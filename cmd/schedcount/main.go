// Command schedcount enumerates and counts distinct jobschedules.
//
// Usage:
//
//	schedcount -x 6 -y 3 -z 3 [-list]
//	schedcount -mix "Jsb(6,3,3)" [-list]
//
// A schedule is a covering set of coschedules (Section 3); two schedules
// are identical when they coschedule the same tuples. With -list the tool
// prints every distinct schedule in the paper's notation when the space is
// small enough to enumerate.
package main

import (
	"flag"
	"fmt"
	"os"

	"symbios/internal/schedule"
	"symbios/internal/workload"
)

func main() {
	var (
		x    = flag.Int("x", 0, "number of runnable jobs (schedulable entries)")
		y    = flag.Int("y", 0, "multithreading level")
		z    = flag.Int("z", 0, "jobs swapped per timeslice")
		mix  = flag.String("mix", "", "take X, Y, Z from a registered mix label")
		list = flag.Bool("list", false, "enumerate the schedules (small spaces only)")
	)
	flag.Parse()

	if *mix != "" {
		m, err := workload.MixByLabel(*mix)
		if err != nil {
			fatal(err)
		}
		*x, *y, *z = m.Tasks(), m.SMTLevel, m.Swap
	}
	if *x < 1 || *y < 1 || *z < 1 {
		fatal(fmt.Errorf("need -x, -y and -z (or -mix); got x=%d y=%d z=%d", *x, *y, *z))
	}
	if *y > *x || *z > *y {
		fatal(fmt.Errorf("require z <= y <= x; got x=%d y=%d z=%d", *x, *y, *z))
	}

	count := schedule.Count(*x, *y, *z)
	fmt.Printf("J(%d,%d,%d): %s distinct schedules\n", *x, *y, *z, count)

	if *list {
		scheds, err := schedule.Enumerate(*x, *y, *z, 10_000)
		if err != nil {
			fatal(err)
		}
		for _, s := range scheds {
			fmt.Println(" ", s)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "schedcount:", err)
	os.Exit(1)
}
