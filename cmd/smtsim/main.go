// Command smtsim runs one coschedule on the simulated SMT processor and
// dumps the performance counters — the raw substrate underneath SOS.
//
// Usage:
//
//	smtsim -jobs FP,MG,WAVE [-cycles 2000000] [-warmup 1000000] [-seed 42]
//
// Each named benchmark occupies one hardware context for the whole run.
// The report shows aggregate and per-thread IPC, the conflict percentage on
// each shared resource, cache hit rates and branch predictor behaviour.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"symbios/internal/arch"
	"symbios/internal/counters"
	"symbios/internal/cpu"
	"symbios/internal/rng"
	"symbios/internal/workload"
)

func main() {
	var (
		jobList = flag.String("jobs", "FP,MG", "comma-separated benchmarks to coschedule (one per context)")
		cycles  = flag.Uint64("cycles", 2_000_000, "measured cycles")
		warmup  = flag.Uint64("warmup", 1_000_000, "unmeasured warmup cycles")
		seed    = flag.Uint64("seed", 42, "stream seed")
		dump    = flag.Int("dump", 0, "instead of simulating, print the first N decoded instructions of the first benchmark")
	)
	flag.Parse()

	if *dump > 0 {
		if err := dumpStream(strings.Split(*jobList, ",")[0], *seed, *dump); err != nil {
			fatal(err)
		}
		return
	}

	names := strings.Split(*jobList, ",")
	cfg := arch.Default21264(len(names))
	c, err := cpu.New(cfg)
	if err != nil {
		fatal(err)
	}

	for i, name := range names {
		spec, err := workload.Lookup(strings.TrimSpace(name))
		if err != nil {
			fatal(err)
		}
		spec.Threads, spec.SyncEvery = 1, 0 // one context per named entry
		job, err := workload.NewJob(spec, i, rng.Hash2(*seed, uint64(i), 1))
		if err != nil {
			fatal(err)
		}
		c.Attach(i, job.Source(0), 0, nil, 0)
	}

	c.Run(*warmup)
	before := c.Snapshot()
	perThread := make([]uint64, len(names))
	for i := range perThread {
		perThread[i] = c.ThreadCommitted(i)
	}
	c.Run(*cycles)
	d := c.Snapshot().Sub(before)

	fmt.Printf("coschedule: %s  (%d cycles after %d warmup)\n", *jobList, *cycles, *warmup)
	fmt.Printf("aggregate IPC %.3f  (%d instructions)\n", d.IPC(), d.Committed)
	for i, name := range names {
		fmt.Printf("  %-8s IPC %.3f\n", name, float64(c.ThreadCommitted(i)-perThread[i])/float64(*cycles))
	}
	fmt.Println("conflict cycles (% of cycles with a conflict on each shared resource):")
	for r := counters.Resource(0); r < counters.NumResources; r++ {
		fmt.Printf("  %-11s %6.2f%%\n", r, d.ConflictPct(r))
	}
	fmt.Printf("L1D hit %.2f%%  L1I hit %.2f%%  L2 hit %.2f%%  TLB hit %.2f%%\n",
		100*d.L1DHitRate(),
		pct(d.L1IHits, d.L1IMisses),
		pct(d.L2Hits, d.L2Misses),
		pct(d.TLBHits, d.TLBMisses))
	fmt.Printf("branches: %.2f%% of instructions, %.2f%% mispredicted\n",
		100*float64(d.BranchCommitted)/float64(d.Committed), 100*d.MispredictRate())
	fmt.Printf("mix: %.1f%% fp, %.1f%% int, %.1f%% load, %.1f%% store\n",
		d.FPPct(), d.IntPct(),
		100*float64(d.LoadCommitted)/float64(d.Committed),
		100*float64(d.StoreCommitted)/float64(d.Committed))
}

func pct(h, m uint64) float64 {
	if h+m == 0 {
		return 100
	}
	return 100 * float64(h) / float64(h+m)
}

// dumpStream decodes and prints the first n instructions of a benchmark's
// synthetic stream — a debugging window into the trace generator.
func dumpStream(name string, seed uint64, n int) error {
	spec, err := workload.Lookup(strings.TrimSpace(name))
	if err != nil {
		return err
	}
	spec.Threads, spec.SyncEvery = 1, 0
	job, err := workload.NewJob(spec, 0, seed)
	if err != nil {
		return err
	}
	src := job.Source(0)
	fmt.Printf("first %d instructions of %s (seed %d):"+"\n", n, spec.Name, seed)
	fmt.Printf("%6s %-7s %14s %14s %5s %5s %s"+"\n", "seq", "op", "pc", "addr", "dep1", "dep2", "")
	for i := 0; i < n; i++ {
		in := src.At(uint64(i))
		addr := ""
		if in.Op.IsMem() {
			addr = fmt.Sprintf("%#x", in.Addr)
		}
		taken := ""
		if in.Op.String() == "BRANCH" {
			taken = fmt.Sprintf("taken=%v", in.Taken)
		}
		fmt.Printf("%6d %-7s %#14x %14s %5d %5d %s"+"\n", i, in.Op, in.PC, addr, in.Dep1, in.Dep2, taken)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smtsim:", err)
	os.Exit(1)
}
