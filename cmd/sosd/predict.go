package main

import (
	"context"
	"fmt"

	"symbios/internal/arch"
	"symbios/internal/core"
	"symbios/internal/experiments"
	"symbios/internal/faults"
	"symbios/internal/rng"
	"symbios/internal/schedule"
	"symbios/internal/workload"
)

// Per-purpose hash salts, so no two random streams in a request coincide.
const (
	saltSchedDraw = 0x50d1
	saltJobSeed   = 0x3017 // matches the experiments layer's buildJobs salt
	saltChaos     = 0x50d2
	saltAdaptive  = 0x50d3
	saltJitter    = 0x50d4
	saltDiverge   = 0x50d5
)

// evaluator answers schedule requests. Fields are read-only after New, so
// evaluations can run concurrently.
type evaluator struct {
	scale experiments.Scale
	// chaos, when non-nil, is the server-wide fault config applied to every
	// request's machine (the -chaos flag). Per-request Fault blocks override
	// it for that request.
	chaos *faults.Config
	// sim, when non-nil, aggregates every request machine's cycles, commits
	// and per-resource conflicts into the registry (set by newServer).
	sim *core.SimMetrics
}

// evaluate answers one decoded request. The attempt ordinal keeps retried
// evaluations deterministic: attempt k of a request always sees the same
// injector seed, so a retry sequence replays identically.
func (e *evaluator) evaluate(ctx context.Context, req ScheduleRequest, attempt int) (*ScheduleResponse, error) {
	mix, err := workload.MixByLabel(req.Mix)
	if err != nil {
		return nil, err
	}
	pred := predictorNames[req.Predictor]
	switch req.Mode {
	case "adaptive":
		return e.adaptive(ctx, req, mix, pred, attempt)
	default:
		return e.rank(ctx, req, mix, pred, attempt)
	}
}

// injectorFor builds this request's fault injector, or nil when the request
// (and the server) run clean. The injector seed folds in the attempt number
// so a retry draws a fresh — but deterministic — fault pattern.
func (e *evaluator) injectorFor(req ScheduleRequest, attempt int) *faults.Injector {
	fc := e.chaos
	if req.Fault != nil {
		fc = req.Fault
	}
	if fc == nil || !fc.Active() {
		return nil
	}
	seeded := *fc
	if seeded.Seed == 0 {
		seeded.Seed = req.Seed
	}
	seeded.Seed = rng.Hash2(seeded.Seed, uint64(attempt), saltChaos)
	return faults.New(seeded)
}

// rank runs the sample phase and returns the predictor-ranked candidates.
func (e *evaluator) rank(ctx context.Context, req ScheduleRequest, mix workload.Mix, pred core.Predictor, attempt int) (*ScheduleResponse, error) {
	cfg := arch.Default21264(mix.SMTLevel)
	slice := e.scale.SliceFor(mix)
	jobs, err := mix.Build(req.Seed)
	if err != nil {
		return nil, err
	}
	m, err := core.NewMachine(cfg, jobs, slice)
	if err != nil {
		return nil, err
	}
	m.SetSimMetrics(e.sim)
	if inj := e.injectorFor(req, attempt); inj != nil {
		m.SetCounterReader(inj)
	}
	r := rng.New(rng.Hash2(req.Seed, saltSchedDraw, 0))
	scheds := schedule.Sample(r, mix.Tasks(), mix.SMTLevel, mix.Swap, req.Samples)
	if err := warm(ctx, m, scheds[0], e.scale.WarmupCycles); err != nil {
		return nil, err
	}
	// The sample phase is inherently sequential: every candidate schedule
	// must be observed on this one machine, whose jobs keep progressing
	// across samples (the paper's overhead-free sample phase). Batched
	// evaluation (core.EvalBatch) applies to the fan-outs around it — the
	// solo calibrations (core.SoloRates) and the experiments' symbios
	// validations — not to this loop.
	samples := make([]core.Sample, 0, len(scheds))
	for _, s := range scheds {
		run, err := m.RunScheduleCtx(ctx, s, s.CycleSlices()*e.scale.SampleRounds)
		if err != nil {
			return nil, err
		}
		if run.ReadFailures > 0 {
			// A sample built on failed counter reads would rank on garbage;
			// surface the transient so the retry layer can redo the request.
			return nil, fmt.Errorf("sample of %s lost %d counter reads: %w",
				s, run.ReadFailures, core.ErrCounterRead)
		}
		samples = append(samples, core.NewSample(s, run))
	}
	order := core.Rank(samples, pred)
	resp := &ScheduleResponse{
		Mix:       req.Mix,
		Mode:      req.Mode,
		Predictor: req.Predictor,
		Seed:      req.Seed,
		Best:      scheds[order[0]].String(),
	}
	for _, i := range order {
		resp.Ranking = append(resp.Ranking, RankedSchedule{
			Schedule: scheds[i].String(),
			IPC:      samples[i].IPC,
		})
	}
	return resp, nil
}

// adaptive runs the full adaptive SOS scheduler and reports the realized
// weighted speedup alongside the schedule it converged on.
func (e *evaluator) adaptive(ctx context.Context, req ScheduleRequest, mix workload.Mix, pred core.Predictor, attempt int) (*ScheduleResponse, error) {
	cfg := arch.Default21264(mix.SMTLevel)
	slice := e.scale.SliceFor(mix)

	// Calibrate solo rates on clean machines: the paper's baseline is the
	// job running alone, which no fault model corrupts.
	jobs, err := mix.Build(req.Seed)
	if err != nil {
		return nil, err
	}
	seeds := make([]uint64, len(jobs))
	for i := range seeds {
		seeds[i] = rng.Hash2(req.Seed, uint64(i), saltJobSeed)
	}
	solo, err := core.SoloRates(cfg, jobs, seeds, e.scale.CalibWarmup, e.scale.CalibMeasure)
	if err != nil {
		return nil, err
	}

	jobs, err = mix.Build(req.Seed)
	if err != nil {
		return nil, err
	}
	m, err := core.NewMachine(cfg, jobs, slice)
	if err != nil {
		return nil, err
	}
	m.SetSimMetrics(e.sim)
	if inj := e.injectorFor(req, attempt); inj != nil {
		m.SetCounterReader(inj)
	}
	symSlices := int(e.scale.SymbiosCycles / slice)
	if symSlices < 1 {
		symSlices = 1
	}
	res, err := core.RunAdaptiveCtx(ctx, m, mix.SMTLevel, mix.Swap, solo, core.AdaptiveOptions{
		Samples:       req.Samples,
		Predictor:     pred,
		SymbiosSlices: symSlices,
		WarmupCycles:  e.scale.WarmupCycles,
		Seed:          rng.Hash2(req.Seed, saltAdaptive, 0),
	})
	if err != nil {
		return nil, err
	}
	return &ScheduleResponse{
		Mix:             req.Mix,
		Mode:            req.Mode,
		Predictor:       req.Predictor,
		Seed:            req.Seed,
		WeightedSpeedup: res.WeightedSpeedup,
		Cycles:          res.Cycles,
		Resamples:       res.Resamples,
		Retries:         res.Retries,
	}, nil
}

// roundRobin is the brownout ladder's floor (mode 2): the arrival-order
// schedule with no simulation at all — a pure function of the request, so
// mode-2 answers are byte-deterministic without touching the evaluator.
func roundRobin(req ScheduleRequest) (*ScheduleResponse, error) {
	mix, err := workload.MixByLabel(req.Mix)
	if err != nil {
		return nil, err
	}
	order := make([]int, mix.Tasks())
	for i := range order {
		order[i] = i
	}
	s, err := schedule.New(order, mix.SMTLevel, mix.Swap)
	if err != nil {
		return nil, err
	}
	return &ScheduleResponse{
		Mix:       req.Mix,
		Mode:      req.Mode,
		Predictor: req.Predictor,
		Seed:      req.Seed,
		Best:      s.String(),
		Degraded:  "round-robin",
	}, nil
}

// warm runs whole rotations of s, unrecorded, until at least cycles have
// elapsed (the experiments layer's warm, replicated since it is unexported
// there).
func warm(ctx context.Context, m *core.Machine, s schedule.Schedule, cycles uint64) error {
	rot := s.CycleSlices()
	rounds := int(cycles/(uint64(rot)*m.SliceCycles)) + 1
	_, err := m.RunScheduleCtx(ctx, s, rot*rounds)
	return err
}

// rankBatchChunk is how many batch items share one core.EvalBatch advance.
// Fixed — like the experiments layer's symbiosBatch — so the grouping, and
// with it every result, is a pure function of the request list: the same
// batch yields the same bytes at -workers 1 and -workers 8.
const rankBatchChunk = 8

// rankBatch evaluates many rank requests through shared EvalBatch advances,
// chunked at rankBatchChunk. Each request gets its own machine executing
// exactly the operation sequence rank would run — warm on the first sampled
// schedule, then each sample in draw order — and the batch interleaves those
// sequences timeslice by timeslice, which EvalBatch's equivalence contract
// guarantees is bit-identical to running each alone. Results and errors are
// per item, parallel to reqs; an error on one item (a lost counter read,
// a build failure) never touches its chunk-mates unless the shared context
// died, in which case every unfinished item reports the context error.
func (e *evaluator) rankBatch(ctx context.Context, reqs []ScheduleRequest, attempt int) ([]*ScheduleResponse, []error) {
	out := make([]*ScheduleResponse, len(reqs))
	errs := make([]error, len(reqs))
	for lo := 0; lo < len(reqs); lo += rankBatchChunk {
		hi := lo + rankBatchChunk
		if hi > len(reqs) {
			hi = len(reqs)
		}
		e.rankChunk(ctx, reqs[lo:hi], out[lo:hi], errs[lo:hi], attempt)
	}
	return out, errs
}

// rankChunkItem is one request's in-flight state inside rankChunk.
type rankChunkItem struct {
	mix     workload.Mix
	m       *core.Machine
	scheds  []schedule.Schedule
	samples []core.Sample
}

// rankChunk advances one chunk of rank evaluations together: one EvalBatch
// for every item's warm-up run, then one EvalBatch per sample round over the
// items still standing.
func (e *evaluator) rankChunk(ctx context.Context, reqs []ScheduleRequest, out []*ScheduleResponse, errs []error, attempt int) {
	items := make([]*rankChunkItem, len(reqs))
	for i, req := range reqs {
		mix, err := workload.MixByLabel(req.Mix)
		if err != nil {
			errs[i] = err
			continue
		}
		jobs, err := mix.Build(req.Seed)
		if err != nil {
			errs[i] = err
			continue
		}
		m, err := core.NewMachine(arch.Default21264(mix.SMTLevel), jobs, e.scale.SliceFor(mix))
		if err != nil {
			errs[i] = err
			continue
		}
		m.SetSimMetrics(e.sim)
		if inj := e.injectorFor(req, attempt); inj != nil {
			m.SetCounterReader(inj)
		}
		r := rng.New(rng.Hash2(req.Seed, saltSchedDraw, 0))
		items[i] = &rankChunkItem{
			mix:    mix,
			m:      m,
			scheds: schedule.Sample(r, mix.Tasks(), mix.SMTLevel, mix.Swap, req.Samples),
		}
	}

	// abort fails every item still in flight — EvalBatch.Run abandons the
	// whole batch on its first error (in practice the shared context dying),
	// so no item has a usable partial result afterwards.
	abort := func(err error) {
		for i, it := range items {
			if it != nil {
				errs[i] = err
				items[i] = nil
			}
		}
	}

	// Warm-up round: the same rotations warm() would run, one machine each,
	// interleaved.
	var wb core.EvalBatch
	warming := false
	for i, it := range items {
		if it == nil {
			continue
		}
		rot := it.scheds[0].CycleSlices()
		rounds := int(e.scale.WarmupCycles/(uint64(rot)*it.m.SliceCycles)) + 1
		if _, err := wb.Add(it.m, it.scheds[0], rot*rounds); err != nil {
			errs[i] = err
			items[i] = nil
			continue
		}
		warming = true
	}
	if warming {
		if _, err := wb.Run(ctx); err != nil {
			abort(err)
			return
		}
	}

	// Sample rounds: round r runs every surviving item's r-th sampled
	// schedule. An item that loses counter reads drops out of later rounds —
	// the singleton path returns at that point too, so its machine would
	// never have run them.
	maxSamples := 0
	for _, it := range items {
		if it != nil && len(it.scheds) > maxSamples {
			maxSamples = len(it.scheds)
		}
	}
	for rnd := 0; rnd < maxSamples; rnd++ {
		var eb core.EvalBatch
		var live []int
		for i, it := range items {
			if it == nil || rnd >= len(it.scheds) {
				continue
			}
			s := it.scheds[rnd]
			if _, err := eb.Add(it.m, s, s.CycleSlices()*e.scale.SampleRounds); err != nil {
				errs[i] = err
				items[i] = nil
				continue
			}
			live = append(live, i)
		}
		if len(live) == 0 {
			break
		}
		runs, err := eb.Run(ctx)
		if err != nil {
			abort(err)
			return
		}
		for j, i := range live {
			it, run := items[i], runs[j]
			if run.ReadFailures > 0 {
				errs[i] = fmt.Errorf("sample of %s lost %d counter reads: %w",
					it.scheds[rnd], run.ReadFailures, core.ErrCounterRead)
				items[i] = nil
				continue
			}
			it.samples = append(it.samples, core.NewSample(it.scheds[rnd], run))
		}
	}

	for i, it := range items {
		if it == nil {
			continue
		}
		req := reqs[i]
		order := core.Rank(it.samples, predictorNames[req.Predictor])
		resp := &ScheduleResponse{
			Mix:       req.Mix,
			Mode:      req.Mode,
			Predictor: req.Predictor,
			Seed:      req.Seed,
			Best:      it.scheds[order[0]].String(),
		}
		for _, k := range order {
			resp.Ranking = append(resp.Ranking, RankedSchedule{
				Schedule: it.scheds[k].String(),
				IPC:      it.samples[k].IPC,
			})
		}
		out[i] = resp
	}
}
