package main

import (
	"context"
	"fmt"

	"symbios/internal/arch"
	"symbios/internal/core"
	"symbios/internal/experiments"
	"symbios/internal/faults"
	"symbios/internal/rng"
	"symbios/internal/schedule"
	"symbios/internal/workload"
)

// Per-purpose hash salts, so no two random streams in a request coincide.
const (
	saltSchedDraw = 0x50d1
	saltJobSeed   = 0x3017 // matches the experiments layer's buildJobs salt
	saltChaos     = 0x50d2
	saltAdaptive  = 0x50d3
	saltJitter    = 0x50d4
	saltDiverge   = 0x50d5
)

// evaluator answers schedule requests. Fields are read-only after New, so
// evaluations can run concurrently.
type evaluator struct {
	scale experiments.Scale
	// chaos, when non-nil, is the server-wide fault config applied to every
	// request's machine (the -chaos flag). Per-request Fault blocks override
	// it for that request.
	chaos *faults.Config
	// sim, when non-nil, aggregates every request machine's cycles, commits
	// and per-resource conflicts into the registry (set by newServer).
	sim *core.SimMetrics
}

// evaluate answers one decoded request. The attempt ordinal keeps retried
// evaluations deterministic: attempt k of a request always sees the same
// injector seed, so a retry sequence replays identically.
func (e *evaluator) evaluate(ctx context.Context, req ScheduleRequest, attempt int) (*ScheduleResponse, error) {
	mix, err := workload.MixByLabel(req.Mix)
	if err != nil {
		return nil, err
	}
	pred := predictorNames[req.Predictor]
	switch req.Mode {
	case "adaptive":
		return e.adaptive(ctx, req, mix, pred, attempt)
	default:
		return e.rank(ctx, req, mix, pred, attempt)
	}
}

// injectorFor builds this request's fault injector, or nil when the request
// (and the server) run clean. The injector seed folds in the attempt number
// so a retry draws a fresh — but deterministic — fault pattern.
func (e *evaluator) injectorFor(req ScheduleRequest, attempt int) *faults.Injector {
	fc := e.chaos
	if req.Fault != nil {
		fc = req.Fault
	}
	if fc == nil || !fc.Active() {
		return nil
	}
	seeded := *fc
	if seeded.Seed == 0 {
		seeded.Seed = req.Seed
	}
	seeded.Seed = rng.Hash2(seeded.Seed, uint64(attempt), saltChaos)
	return faults.New(seeded)
}

// rank runs the sample phase and returns the predictor-ranked candidates.
func (e *evaluator) rank(ctx context.Context, req ScheduleRequest, mix workload.Mix, pred core.Predictor, attempt int) (*ScheduleResponse, error) {
	cfg := arch.Default21264(mix.SMTLevel)
	slice := e.scale.SliceFor(mix)
	jobs, err := mix.Build(req.Seed)
	if err != nil {
		return nil, err
	}
	m, err := core.NewMachine(cfg, jobs, slice)
	if err != nil {
		return nil, err
	}
	m.SetSimMetrics(e.sim)
	if inj := e.injectorFor(req, attempt); inj != nil {
		m.SetCounterReader(inj)
	}
	r := rng.New(rng.Hash2(req.Seed, saltSchedDraw, 0))
	scheds := schedule.Sample(r, mix.Tasks(), mix.SMTLevel, mix.Swap, req.Samples)
	if err := warm(ctx, m, scheds[0], e.scale.WarmupCycles); err != nil {
		return nil, err
	}
	// The sample phase is inherently sequential: every candidate schedule
	// must be observed on this one machine, whose jobs keep progressing
	// across samples (the paper's overhead-free sample phase). Batched
	// evaluation (core.EvalBatch) applies to the fan-outs around it — the
	// solo calibrations (core.SoloRates) and the experiments' symbios
	// validations — not to this loop.
	samples := make([]core.Sample, 0, len(scheds))
	for _, s := range scheds {
		run, err := m.RunScheduleCtx(ctx, s, s.CycleSlices()*e.scale.SampleRounds)
		if err != nil {
			return nil, err
		}
		if run.ReadFailures > 0 {
			// A sample built on failed counter reads would rank on garbage;
			// surface the transient so the retry layer can redo the request.
			return nil, fmt.Errorf("sample of %s lost %d counter reads: %w",
				s, run.ReadFailures, core.ErrCounterRead)
		}
		samples = append(samples, core.NewSample(s, run))
	}
	order := core.Rank(samples, pred)
	resp := &ScheduleResponse{
		Mix:       req.Mix,
		Mode:      req.Mode,
		Predictor: req.Predictor,
		Seed:      req.Seed,
		Best:      scheds[order[0]].String(),
	}
	for _, i := range order {
		resp.Ranking = append(resp.Ranking, RankedSchedule{
			Schedule: scheds[i].String(),
			IPC:      samples[i].IPC,
		})
	}
	return resp, nil
}

// adaptive runs the full adaptive SOS scheduler and reports the realized
// weighted speedup alongside the schedule it converged on.
func (e *evaluator) adaptive(ctx context.Context, req ScheduleRequest, mix workload.Mix, pred core.Predictor, attempt int) (*ScheduleResponse, error) {
	cfg := arch.Default21264(mix.SMTLevel)
	slice := e.scale.SliceFor(mix)

	// Calibrate solo rates on clean machines: the paper's baseline is the
	// job running alone, which no fault model corrupts.
	jobs, err := mix.Build(req.Seed)
	if err != nil {
		return nil, err
	}
	seeds := make([]uint64, len(jobs))
	for i := range seeds {
		seeds[i] = rng.Hash2(req.Seed, uint64(i), saltJobSeed)
	}
	solo, err := core.SoloRates(cfg, jobs, seeds, e.scale.CalibWarmup, e.scale.CalibMeasure)
	if err != nil {
		return nil, err
	}

	jobs, err = mix.Build(req.Seed)
	if err != nil {
		return nil, err
	}
	m, err := core.NewMachine(cfg, jobs, slice)
	if err != nil {
		return nil, err
	}
	m.SetSimMetrics(e.sim)
	if inj := e.injectorFor(req, attempt); inj != nil {
		m.SetCounterReader(inj)
	}
	symSlices := int(e.scale.SymbiosCycles / slice)
	if symSlices < 1 {
		symSlices = 1
	}
	res, err := core.RunAdaptiveCtx(ctx, m, mix.SMTLevel, mix.Swap, solo, core.AdaptiveOptions{
		Samples:       req.Samples,
		Predictor:     pred,
		SymbiosSlices: symSlices,
		WarmupCycles:  e.scale.WarmupCycles,
		Seed:          rng.Hash2(req.Seed, saltAdaptive, 0),
	})
	if err != nil {
		return nil, err
	}
	return &ScheduleResponse{
		Mix:             req.Mix,
		Mode:            req.Mode,
		Predictor:       req.Predictor,
		Seed:            req.Seed,
		WeightedSpeedup: res.WeightedSpeedup,
		Cycles:          res.Cycles,
		Resamples:       res.Resamples,
		Retries:         res.Retries,
	}, nil
}

// roundRobin is the brownout ladder's floor (mode 2): the arrival-order
// schedule with no simulation at all — a pure function of the request, so
// mode-2 answers are byte-deterministic without touching the evaluator.
func roundRobin(req ScheduleRequest) (*ScheduleResponse, error) {
	mix, err := workload.MixByLabel(req.Mix)
	if err != nil {
		return nil, err
	}
	order := make([]int, mix.Tasks())
	for i := range order {
		order[i] = i
	}
	s, err := schedule.New(order, mix.SMTLevel, mix.Swap)
	if err != nil {
		return nil, err
	}
	return &ScheduleResponse{
		Mix:       req.Mix,
		Mode:      req.Mode,
		Predictor: req.Predictor,
		Seed:      req.Seed,
		Best:      s.String(),
		Degraded:  "round-robin",
	}, nil
}

// warm runs whole rotations of s, unrecorded, until at least cycles have
// elapsed (the experiments layer's warm, replicated since it is unexported
// there).
func warm(ctx context.Context, m *core.Machine, s schedule.Schedule, cycles uint64) error {
	rot := s.CycleSlices()
	rounds := int(cycles/(uint64(rot)*m.SliceCycles)) + 1
	_, err := m.RunScheduleCtx(ctx, s, rot*rounds)
	return err
}
