package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"symbios/internal/core"
	"symbios/internal/faults"
	"symbios/internal/workload"
)

// MaxRequestBytes bounds a /v1/schedule request body. The largest legitimate
// request (every field plus a full fault block) is under 1 KiB; the cap is
// generous while keeping a hostile body from ballooning the decoder.
const MaxRequestBytes = 16 << 10

// Request limits. Deadlines are bounded by server policy as well; these just
// reject nonsense at the decode layer.
const (
	maxSamples    = 32
	maxDeadlineMS = 600_000
)

// ScheduleRequest is the body of POST /v1/schedule.
type ScheduleRequest struct {
	// Mix is a registered jobmix label, e.g. "Jsb(6,3,3)".
	Mix string `json:"mix"`
	// Seed drives every random choice the evaluation makes; identical
	// requests (same seed included) return byte-identical responses.
	Seed uint64 `json:"seed"`
	// Predictor is the paper predictor ranking the samples ("IPC",
	// "AllConf", ..., "Score"). Empty selects "Score".
	Predictor string `json:"predictor,omitempty"`
	// Samples caps the schedules sampled. 0 selects 10; max 32.
	Samples int `json:"samples,omitempty"`
	// Mode is "rank" (sample + predictor ranking; the default) or
	// "adaptive" (full adaptive SOS run, returns the realized WS).
	Mode string `json:"mode,omitempty"`
	// DeadlineMS is the client's latency budget; 0 uses the server default.
	// The server clamps it to its own maximum either way.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Fault optionally injects counter faults into this request's machine.
	// Only honored when the server runs with -chaos; otherwise rejected.
	Fault *faults.Config `json:"fault,omitempty"`
}

// RankedSchedule is one entry of a rank-mode response, best first.
type RankedSchedule struct {
	Schedule string  `json:"schedule"`
	IPC      float64 `json:"ipc"`
}

// ScheduleResponse is the body of a successful /v1/schedule reply. The
// server marshals it exactly once per distinct request fingerprint and
// replays the cached bytes thereafter, so responses are byte-identical.
type ScheduleResponse struct {
	Mix       string `json:"mix"`
	Mode      string `json:"mode"`
	Predictor string `json:"predictor"`
	Seed      uint64 `json:"seed"`

	// Best is the chosen coschedule in schedule.String() notation (rank
	// mode; the adaptive scheduler reports its realized speedup instead,
	// since it re-decides the schedule throughout the run).
	Best string `json:"best,omitempty"`
	// Ranking is the full predictor-ranked candidate list (rank mode).
	Ranking []RankedSchedule `json:"ranking,omitempty"`

	// Adaptive-mode results.
	WeightedSpeedup float64 `json:"weighted_speedup,omitempty"`
	Cycles          uint64  `json:"cycles,omitempty"`
	Resamples       int     `json:"resamples,omitempty"`
	Retries         int     `json:"retries,omitempty"`

	// Degraded marks an answer produced below full service quality by the
	// brownout ladder's most degraded mode ("round-robin": the arrival-order
	// schedule, no simulation). Degraded answers are never cached, so they
	// can never be replayed once the ladder recovers.
	Degraded string `json:"degraded,omitempty"`
}

// predictorNames maps wire names to predictors, built once from the core
// registry so the two can never drift.
var predictorNames = func() map[string]core.Predictor {
	m := make(map[string]core.Predictor, int(core.NumPredictors))
	for _, p := range core.Predictors() {
		if p == core.NumPredictors {
			continue
		}
		m[p.String()] = p
	}
	return m
}()

// DecodeScheduleRequest parses and validates a request body. It must never
// panic on hostile input (the fuzz target drives it with garbage): unknown
// fields, trailing data, out-of-range numbers and non-finite fault rates
// are all errors, not surprises downstream.
func DecodeScheduleRequest(data []byte) (ScheduleRequest, error) {
	var req ScheduleRequest
	if len(data) > MaxRequestBytes {
		return req, fmt.Errorf("request body exceeds %d bytes", MaxRequestBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("invalid JSON: %v", err)
	}
	if dec.More() {
		return req, fmt.Errorf("trailing data after request object")
	}
	if req.Mix == "" {
		return req, fmt.Errorf("missing required field \"mix\"")
	}
	if _, err := workload.MixByLabel(req.Mix); err != nil {
		return req, fmt.Errorf("unknown mix %q (see GET /v1/mixes)", req.Mix)
	}
	if req.Predictor == "" {
		req.Predictor = core.PredScore.String()
	}
	if _, ok := predictorNames[req.Predictor]; !ok {
		return req, fmt.Errorf("unknown predictor %q", req.Predictor)
	}
	if req.Samples == 0 {
		req.Samples = 10
	}
	if req.Samples < 1 || req.Samples > maxSamples {
		return req, fmt.Errorf("samples %d out of range [1,%d]", req.Samples, maxSamples)
	}
	switch req.Mode {
	case "":
		req.Mode = "rank"
	case "rank", "adaptive":
	default:
		return req, fmt.Errorf("unknown mode %q (want \"rank\" or \"adaptive\")", req.Mode)
	}
	if req.DeadlineMS < 0 || req.DeadlineMS > maxDeadlineMS {
		return req, fmt.Errorf("deadline_ms %d out of range [0,%d]", req.DeadlineMS, maxDeadlineMS)
	}
	if req.Fault != nil {
		if err := validateFault(*req.Fault); err != nil {
			return req, err
		}
		if !req.Fault.Active() {
			req.Fault = nil // an all-zero fault block is the same as none
		}
	}
	return req, nil
}

// validateFault rejects fault configs the injector's math would mishandle.
func validateFault(fc faults.Config) error {
	rates := []struct {
		name       string
		v          float64
		probLimits bool
	}{
		{"noise_sigma", fc.NoiseSigma, false},
		{"drop_rate", fc.DropRate, true},
		{"sticky_rate", fc.StickyRate, true},
		{"fail_rate", fc.FailRate, true},
	}
	for _, r := range rates {
		if math.IsNaN(r.v) || math.IsInf(r.v, 0) {
			return fmt.Errorf("fault.%s is not finite", r.name)
		}
		if r.v < 0 {
			return fmt.Errorf("fault.%s is negative", r.name)
		}
		if r.probLimits && r.v > 1 {
			return fmt.Errorf("fault.%s exceeds 1", r.name)
		}
	}
	if fc.NoiseSigma > 10 {
		return fmt.Errorf("fault.noise_sigma exceeds 10")
	}
	return nil
}

// Fingerprint is the response-cache key: the canonical encoding of every
// field that affects the result. DeadlineMS is deliberately excluded — the
// deadline bounds how long the work may take, never what it computes — so a
// client retrying with a longer budget still hits the cache.
func (r ScheduleRequest) Fingerprint() string {
	key := struct {
		Mix       string         `json:"mix"`
		Seed      uint64         `json:"seed"`
		Predictor string         `json:"predictor"`
		Samples   int            `json:"samples"`
		Mode      string         `json:"mode"`
		Fault     *faults.Config `json:"fault,omitempty"`
	}{r.Mix, r.Seed, r.Predictor, r.Samples, r.Mode, r.Fault}
	b, err := json.Marshal(key)
	if err != nil {
		// Every field is a plain value; Marshal cannot fail.
		panic(err)
	}
	return string(b)
}
