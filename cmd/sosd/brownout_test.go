package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"symbios/internal/leakcheck"
	"symbios/internal/parallel"
)

// postFull sends a schedule request and returns status, headers and body.
func postFull(ts *httptest.Server, body string, client string) (int, http.Header, []byte, error) {
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/schedule", bytes.NewReader([]byte(body)))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("X-Client-ID", client)
	resp, err := ts.Client().Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, data, err
}

// adaptiveBody builds an adaptive-mode request with a unique seed so no two
// load requests ever share a cache entry.
func adaptiveBody(seed uint64) string {
	return fmt.Sprintf(`{"mix":"Jsb(4,2,2)","seed":%d,"samples":3,"mode":"adaptive"}`, seed)
}

// TestOverloadBrownoutLadder drives a controller-run server at well past
// its capacity and asserts the PR's overload contract: every response is a
// success or a clean shed (sheds carrying Retry-After), the degradation
// ladder steps down under sustained sojourn pressure, and once the load
// stops it recovers to full service through the hysteresis band without
// flapping.
func TestOverloadBrownoutLadder(t *testing.T) {
	if testing.Short() {
		t.Skip("overload soak skipped in -short mode")
	}
	leakcheck.Check(t)

	srv, ts := newTestServer(t, testServerOpts{
		cfg: func(c *serverConfig) {
			c.Queue = 8
			c.Workers = 1
			c.QueueTarget = 50 * time.Millisecond
			c.QueueInterval = 200 * time.Millisecond
			c.BrownoutPin = -1
			c.BrownoutDown = 25 * time.Millisecond
			c.BrownoutDownHold = 150 * time.Millisecond
			c.BrownoutUpHold = 400 * time.Millisecond
		},
	})

	// Offered load: 6 concurrent clients of back-to-back adaptive requests
	// against a single worker — far past 1.3x capacity, sustained.
	const (
		clients   = 6
		perClient = 10
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				seed := uint64(1000*c + i)
				status, hdr, body, err := postFull(ts, adaptiveBody(seed), fmt.Sprintf("c%d", c))
				if err != nil {
					errs <- fmt.Errorf("transport: %w", err)
					continue
				}
				switch status {
				case http.StatusOK:
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					if hdr.Get("Retry-After") == "" {
						errs <- fmt.Errorf("shed %d without Retry-After", status)
					}
				case http.StatusGatewayTimeout:
					// Out of deadline budget: graceful, Retry-After exempt.
				default:
					errs <- fmt.Errorf("non-shed failure %d: %s", status, body)
				}
				if hdr.Get("X-Brownout-Mode") == "" {
					errs <- fmt.Errorf("response (status %d) missing X-Brownout-Mode", status)
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if st := srv.brownout.Stats(); st.StepDowns < 1 {
		t.Fatalf("ladder never stepped down under overload: %+v", st)
	}

	// Load has stopped. Recovery needs dequeues (sojourn is only measured
	// at dequeue), so probe gently until the controller climbs back.
	deadline := time.Now().Add(15 * time.Second)
	for srv.mode() != 0 && time.Now().Before(deadline) {
		body := fmt.Sprintf(`{"mix":"Jsb(4,2,2)","seed":%d,"samples":2}`, 900_000+time.Now().UnixNano()%100_000)
		tryPostSchedule(ts, body, "probe")
		time.Sleep(50 * time.Millisecond)
	}
	if m := srv.mode(); m != 0 {
		t.Fatalf("ladder stuck at mode %d after load stopped (stats %+v)", m, srv.brownout.Stats())
	}

	// Hysteresis: a clean descent and a clean recovery, not a mode that
	// toggled on every observation. Two full ladders' worth of steps is
	// the generous bound; flapping would blow far past it.
	st := srv.brownout.Stats()
	if st.StepDowns > 4 {
		t.Errorf("ladder flapped: %d step-downs (want <= 4): %+v", st.StepDowns, st)
	}
	if st.StepUps != st.StepDowns {
		t.Errorf("recovered to mode 0 but steps unbalanced: %+v", st)
	}
}

// TestBrownoutDegradedTailLatency pins one server at full service and one
// at mode 1, drives both with the identical overload, and requires the
// degraded ladder rung to deliver a strictly better p99: the whole point of
// answering adaptive requests with the cheap ranking under pressure.
func TestBrownoutDegradedTailLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("overload comparison skipped in -short mode")
	}
	leakcheck.Check(t)

	drive := func(pin int) []time.Duration {
		t.Helper()
		_, ts := newTestServer(t, testServerOpts{
			cfg: func(c *serverConfig) {
				c.Queue = 8
				c.Workers = 2
				c.BrownoutPin = pin
			},
		})
		const (
			clients   = 6
			perClient = 8
		)
		var mu sync.Mutex
		var lats []time.Duration
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < perClient; i++ {
					seed := uint64(10_000*pin + 1000*c + i)
					start := time.Now()
					status, _, _, err := postFull(ts, adaptiveBody(seed), fmt.Sprintf("p%dc%d", pin, c))
					if err != nil || status != http.StatusOK {
						continue // sheds don't enter the latency sample
					}
					mu.Lock()
					lats = append(lats, time.Since(start))
					mu.Unlock()
				}
			}(c)
		}
		wg.Wait()
		if len(lats) < 10 {
			t.Fatalf("pin %d: only %d successes under overload", pin, len(lats))
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return lats
	}

	p99 := func(lats []time.Duration) time.Duration {
		idx := int(0.99*float64(len(lats))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(lats) {
			idx = len(lats) - 1
		}
		return lats[idx]
	}

	full := drive(0)
	degraded := drive(1)
	if p99(degraded) >= p99(full) {
		t.Fatalf("mode-1 p99 %v not better than mode-0 overload p99 %v", p99(degraded), p99(full))
	}
}

// TestBrownoutPerModeDeterminism checks the ladder's determinism contract:
// within each mode, a request's answer is byte-identical across repeated
// evaluations and across evaluation-worker counts, and a mode-1 degraded
// adaptive answer is byte-identical to a genuine rank answer for the same
// request (the property that makes degraded answers safe to cache).
func TestBrownoutPerModeDeterminism(t *testing.T) {
	leakcheck.Check(t)

	// answer evaluates body on a fresh pinned server (no shared cache) with
	// the given evaluation-worker count, twice: the first answer is the
	// computed one, the second exercises the replay path (cached for modes
	// 0/1, recomputed for the uncached mode-2 round-robin).
	answer := func(pin, workers int, body string) ([]byte, []byte) {
		t.Helper()
		prev := parallel.SetDefaultWorkers(workers)
		defer parallel.SetDefaultWorkers(prev)
		_, ts := newTestServer(t, testServerOpts{
			cfg: func(c *serverConfig) { c.BrownoutPin = pin },
		})
		status, first := postSchedule(t, ts, body, "det")
		if status != http.StatusOK {
			t.Fatalf("pin %d workers %d: status %d: %s", pin, workers, status, first)
		}
		status, second := postSchedule(t, ts, body, "det")
		if status != http.StatusOK {
			t.Fatalf("pin %d workers %d replay: status %d: %s", pin, workers, status, second)
		}
		return first, second
	}

	body := `{"mix":"Jsb(4,2,2)","seed":77,"samples":3,"mode":"adaptive"}`
	perMode := map[int][]byte{}
	for _, pin := range []int{0, 1, 2} {
		one, oneAgain := answer(pin, 1, body)
		eight, eightAgain := answer(pin, 8, body)
		if !bytes.Equal(one, oneAgain) || !bytes.Equal(eight, eightAgain) {
			t.Fatalf("pin %d: repeated request not byte-identical", pin)
		}
		if !bytes.Equal(one, eight) {
			t.Fatalf("pin %d: answer differs across workers 1 vs 8:\n%s\n%s", pin, one, eight)
		}
		perMode[pin] = one
	}

	// Modes answer differently (the ladder is real)...
	if bytes.Equal(perMode[0], perMode[1]) || bytes.Equal(perMode[1], perMode[2]) {
		t.Fatalf("ladder modes indistinguishable:\n0: %s\n1: %s\n2: %s",
			perMode[0], perMode[1], perMode[2])
	}
	// ...and the mode-1 degraded answer IS the genuine rank answer for the
	// same request, which is what keys it safely in the shared cache.
	rankBody := `{"mix":"Jsb(4,2,2)","seed":77,"samples":3,"mode":"rank"}`
	_, ts := newTestServer(t, testServerOpts{})
	status, rank := postSchedule(t, ts, rankBody, "det")
	if status != http.StatusOK {
		t.Fatalf("rank request: status %d", status)
	}
	if !bytes.Equal(perMode[1], rank) {
		t.Fatalf("mode-1 degraded answer diverges from the genuine rank answer:\n%s\n%s", perMode[1], rank)
	}
	// Mode 2 marks its fallback explicitly and never claims adaptive work.
	var rr ScheduleResponse
	if err := json.Unmarshal(perMode[2], &rr); err != nil {
		t.Fatalf("mode-2 body: %v", err)
	}
	if rr.Degraded != "round-robin" || rr.Best == "" {
		t.Fatalf("mode-2 answer not a marked round-robin fallback: %+v", rr)
	}
}
