package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"symbios/internal/checkpoint"
	"symbios/internal/integrity"
	"symbios/internal/leakcheck"
)

// postBatch sends a batch envelope and returns status, raw body, and the
// decoded envelope (when the status is 200).
func postBatch(t *testing.T, ts *httptest.Server, body string) (int, []byte, *BatchResponse) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/schedule/batch", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("build batch request: %v", err)
	}
	req.Header.Set("X-Client-ID", "t")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("POST /v1/schedule/batch: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read batch response: %v", err)
	}
	data := buf.Bytes()
	if cerr := integrity.Check(resp.Header.Get(integrity.Header), data); cerr != nil {
		t.Fatalf("batch envelope digest: %v", cerr)
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, data, nil
	}
	var env BatchResponse
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatalf("decode batch envelope: %v\n%s", err, data)
	}
	return resp.StatusCode, data, &env
}

// batchEnvelope builds a `{"requests":[...]}` body from item bodies.
func batchEnvelope(items ...string) string {
	return `{"requests":[` + strings.Join(items, ",") + `]}`
}

// checkItemAgainstSingleton asserts one batch item reconstructs byte-for-
// byte into the singleton answer for the same body: same status, same wire
// bytes (item body + '\n'), and a digest that both verifies and equals the
// digest header the singleton response carried.
func checkItemAgainstSingleton(t *testing.T, item BatchItem, singletonStatus int, singletonBody []byte, singletonDig string) {
	t.Helper()
	if item.Status != singletonStatus {
		t.Fatalf("item status %d, singleton answered %d", item.Status, singletonStatus)
	}
	wire := append(append([]byte{}, item.Body...), '\n')
	if !bytes.Equal(wire, singletonBody) {
		t.Fatalf("item bytes diverge from singleton:\nitem:      %s\nsingleton: %s", wire, singletonBody)
	}
	if err := integrity.Check(item.Digest, wire); err != nil {
		t.Fatalf("item digest: %v", err)
	}
	if singletonDig != "" && item.Digest != singletonDig {
		t.Fatalf("item digest %q != singleton header %q", item.Digest, singletonDig)
	}
}

// postSingleton fetches the singleton truth for a body: status, wire bytes,
// digest header.
func postSingleton(t *testing.T, ts *httptest.Server, body string) (int, []byte, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/schedule", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("build request: %v", err)
	}
	req.Header.Set("X-Client-ID", "t")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("POST /v1/schedule: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp.StatusCode, buf.Bytes(), resp.Header.Get(integrity.Header)
}

// TestScheduleBatchByteIdentity proves the tentpole contract: every batch
// item — cache miss on a fresh server, then cache hit on the second ask —
// is byte-identical to the singleton answer for the same request, per-item
// digest included. Error items (unknown mix, adaptive mode) reproduce the
// singleton error bytes the same way.
func TestScheduleBatchByteIdentity(t *testing.T) {
	leakcheck.Check(t)
	// Singleton truth comes from its own server so the batch server's cache
	// state cannot contaminate the comparison.
	_, single := newTestServer(t, testServerOpts{})
	rec := checkpoint.NewRecorder(filepath.Join(t.TempDir(), "batch.ckpt"),
		checkpoint.Meta{Exp: "sosd", Scale: "serve", Seed: 1}, 1)
	_, batch := newTestServer(t, testServerOpts{rec: rec})

	items := []string{
		`{"mix":"Jsb(4,2,2)","seed":7,"samples":3}`,
		`{"mix":"Jsb(5,2,2)","seed":9,"samples":2,"predictor":"IPC"}`,
		`{"mix":"nope","seed":1}`,
		`{"mix":"Jsb(4,2,2)","seed":7,"samples":3,"mode":"adaptive"}`,
	}
	type truth struct {
		status int
		body   []byte
		digest string
	}
	truths := make([]truth, len(items))
	for i, it := range items {
		if strings.Contains(it, "adaptive") {
			// The batch endpoint rejects adaptive items by contract; the
			// expected bytes are the documented per-item 400.
			continue
		}
		st, body, dig := postSingleton(t, single, it)
		truths[i] = truth{st, body, dig}
	}

	for pass, wantCache := range []string{"miss", "hit"} {
		status, _, env := postBatch(t, batch, batchEnvelope(items...))
		if status != http.StatusOK {
			t.Fatalf("pass %d: batch status %d", pass, status)
		}
		if len(env.Items) != len(items) {
			t.Fatalf("pass %d: %d items answered, want %d", pass, len(env.Items), len(items))
		}
		for i, item := range env.Items {
			switch i {
			case 2: // unknown mix: singleton 400, byte-identical
				checkItemAgainstSingleton(t, item, truths[i].status, truths[i].body, truths[i].digest)
				if item.Cache != "" {
					t.Fatalf("error item carries cache %q", item.Cache)
				}
			case 3: // adaptive: rejected per item, batch untouched
				if item.Status != http.StatusBadRequest {
					t.Fatalf("adaptive item status %d, want 400", item.Status)
				}
				wire := append(append([]byte{}, item.Body...), '\n')
				if err := integrity.Check(item.Digest, wire); err != nil {
					t.Fatalf("adaptive item digest: %v", err)
				}
			default:
				checkItemAgainstSingleton(t, item, truths[i].status, truths[i].body, truths[i].digest)
				if item.Cache != wantCache {
					t.Fatalf("pass %d item %d cache %q, want %q", pass, i, item.Cache, wantCache)
				}
			}
		}
	}

	// The batch's recorded answers are the singleton answers: a singleton
	// ask on the batch server now hits the cache with identical bytes.
	st, body, _ := postSingleton(t, batch, items[0])
	if st != http.StatusOK || !bytes.Equal(body, truths[0].body) {
		t.Fatalf("singleton-after-batch status %d, bytes match %v", st, bytes.Equal(body, truths[0].body))
	}
}

// TestScheduleBatchWorkerInvariance proves batch results do not depend on
// the queue's worker count: the same envelope answered at -workers 1 and
// -workers 8 is byte-identical (the batched ranking pass uses fixed chunk
// sizes and one queue task, so parallelism never reorders its work).
func TestScheduleBatchWorkerInvariance(t *testing.T) {
	leakcheck.Check(t)
	env := batchEnvelope(
		`{"mix":"Jsb(4,2,2)","seed":1,"samples":2}`,
		`{"mix":"Jsb(4,2,2)","seed":2,"samples":3}`,
		`{"mix":"Jsb(5,2,2)","seed":3,"samples":2}`,
		`{"mix":"Jsb(6,3,3)","seed":4,"samples":2}`,
	)
	var bodies [][]byte
	for _, workers := range []int{1, 8} {
		_, ts := newTestServer(t, testServerOpts{cfg: func(c *serverConfig) { c.Workers = workers }})
		status, raw, _ := postBatch(t, ts, env)
		if status != http.StatusOK {
			t.Fatalf("workers=%d: batch status %d", workers, status)
		}
		bodies = append(bodies, raw)
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Fatalf("batch envelope differs between workers=1 and workers=8:\n%s\n%s", bodies[0], bodies[1])
	}
}

// TestScheduleBatchDuplicateItem checks two items sharing a fingerprint are
// resolved per item: the first evaluates, the duplicate 400s, the batch
// succeeds.
func TestScheduleBatchDuplicateItem(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, testServerOpts{})
	// Different bytes, same fingerprint (samples defaults to 10).
	status, _, env := postBatch(t, ts, batchEnvelope(
		`{"mix":"Jsb(4,2,2)","seed":5,"samples":2}`,
		`{"mix":"Jsb(4,2,2)","samples":2,"seed":5}`,
	))
	if status != http.StatusOK {
		t.Fatalf("batch status %d", status)
	}
	if env.Items[0].Status != http.StatusOK {
		t.Fatalf("first twin status %d, want 200", env.Items[0].Status)
	}
	if env.Items[1].Status != http.StatusBadRequest || !strings.Contains(string(env.Items[1].Body), "duplicate of item 0") {
		t.Fatalf("duplicate item status %d body %s", env.Items[1].Status, env.Items[1].Body)
	}
}

// TestScheduleBatchLimiterChargesPerItem checks a batch of n costs n tokens:
// a batch larger than the burst is shed whole with a Retry-After hint, and
// a batch that fits is admitted.
func TestScheduleBatchLimiterChargesPerItem(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, testServerOpts{cfg: func(c *serverConfig) {
		c.Rate = 0.001 // no meaningful refill during the test
		c.Burst = 4
	}})
	var items []string
	for i := 0; i < 8; i++ {
		items = append(items, fmt.Sprintf(`{"mix":"Jsb(4,2,2)","seed":%d,"samples":2}`, i))
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/schedule/batch", bytes.NewReader([]byte(batchEnvelope(items...))))
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("8-item batch against burst 4: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	status, _, env := postBatch(t, ts, batchEnvelope(items[:3]...))
	if status != http.StatusOK {
		t.Fatalf("3-item batch status %d, want 200", status)
	}
	for i, item := range env.Items {
		if item.Status != http.StatusOK {
			t.Fatalf("item %d status %d: %s", i, item.Status, item.Body)
		}
	}
}

// TestScheduleBatchBounds checks batch-level validation: empty and oversized
// arrays are whole-batch 400s.
func TestScheduleBatchBounds(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, testServerOpts{})
	for _, tc := range []struct {
		name, body string
	}{
		{"empty", `{"requests":[]}`},
		{"missing", `{}`},
		{"trailing", `{"requests":[{"mix":"Jsb(4,2,2)"}]} extra`},
		{"unknown-field", `{"requests":[],"extra":1}`},
		{"overfull", batchEnvelope(make64PlusItems()...)},
	} {
		status, body, _ := postBatch(t, ts, tc.body)
		if status != http.StatusBadRequest {
			t.Fatalf("%s: status %d (%s), want 400", tc.name, status, body)
		}
	}
}

func make64PlusItems() []string {
	items := make([]string, MaxBatchItems+1)
	for i := range items {
		items[i] = fmt.Sprintf(`{"mix":"Jsb(4,2,2)","seed":%d}`, i)
	}
	return items
}
