package main

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"symbios/internal/checkpoint"
	"symbios/internal/integrity"
)

// maxExportBytes bounds a sibling's cache-export payload. The cap is
// generous — a serve-scale cache is a few hundred KiB — but it keeps a
// confused or malicious sibling from feeding the warm-up an unbounded body.
const maxExportBytes = 64 << 20

// warmFromSiblings transfers the response cache from the first responsive
// sibling before the node reports ready: fetch /v1/cache/export, merge it
// into the local recorder (Meta must match; divergent bytes abort), and
// clear the warming gate. Best-effort by design — every failure falls
// through to the next sibling and finally to a cold start, because a node
// that refuses to boot without a sibling turns one failure into two.
func (s *server) warmFromSiblings(siblings []string, timeout time.Duration) {
	defer s.warming.Store(false)
	if s.rec == nil || len(siblings) == 0 {
		return
	}
	client := &http.Client{Timeout: timeout}
	defer client.CloseIdleConnections()
	for _, sib := range siblings {
		snap, size, err := fetchExport(client, sib)
		if err != nil {
			s.logger.Printf("cache warm-up: %s: %v", sib, err)
			continue
		}
		added, merr := s.rec.Merge(snap)
		if merr != nil && added == 0 {
			s.logger.Printf("cache warm-up: merging from %s: %v", sib, merr)
			continue
		}
		if merr != nil {
			// Shards were adopted in memory; only persisting the snapshot
			// failed. The cache is warm — don't re-fetch from another
			// sibling, just flag the flush.
			s.logger.Printf("cache warm-up: snapshot flush after merging from %s: %v", sib, merr)
		}
		s.obs.warmShards.Add(uint64(added))
		s.obs.warmBytes.Add(uint64(size))
		s.logger.Printf("warmed %d cached responses (%d bytes) from %s", added, size, sib)
		return
	}
	s.logger.Printf("cache warm-up: no sibling answered; starting cold")
}

// fetchExport pulls one sibling's cache snapshot, returning the decoded
// snapshot and the transfer size in bytes. The body must verify against the
// sibling's X-Content-Digest stamp and parse under the strict export
// decoder before a single byte reaches the recorder: a warm-up that adopted
// wire-corrupted cache entries would poison every response this node serves
// from them, digest-stamped as if they were honest.
func fetchExport(client *http.Client, base string) (*checkpoint.Snapshot, int, error) {
	resp, err := client.Get(strings.TrimRight(base, "/") + "/v1/cache/export")
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("export returned %s", resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxExportBytes))
	if err != nil {
		return nil, 0, fmt.Errorf("reading export: %w", err)
	}
	if cerr := integrity.Check(resp.Header.Get(integrity.Header), data); cerr != nil {
		return nil, 0, fmt.Errorf("export integrity: %w", cerr)
	}
	snap, err := checkpoint.DecodeExport(data)
	if err != nil {
		return nil, 0, fmt.Errorf("decoding export: %w", err)
	}
	return snap, len(data), nil
}
