package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"symbios/internal/checkpoint"
	"symbios/internal/faults"
	"symbios/internal/leakcheck"
	"symbios/internal/resilience"
	"symbios/internal/rng"
)

// TestSoakChaos is the in-process soak: sustained concurrent load against a
// chaos-mode server, with a poisoned request stream, asserting the
// acceptance criteria end to end — overload sheds rather than queues
// unboundedly, the breaker opens and closes again, no request outlives its
// deadline by more than scheduling slack, responses stay deterministic, and
// shutdown under load drains with zero leaked goroutines (enforced by
// TestMain's leakcheck).
func TestSoakChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	leakcheck.Check(t)

	var transMu sync.Mutex
	var transitions []string
	dir := t.TempDir()
	ckptPath := filepath.Join(dir, "soak.json")
	rec := checkpoint.NewRecorder(ckptPath, checkpoint.Meta{Exp: "sosd-chaos", Scale: "serve", Seed: 1}, 4)
	srv, ts := newTestServer(t, testServerOpts{
		chaos: &faults.Config{FailRate: 0.2},
		rec:   rec,
		cfg: func(c *serverConfig) {
			c.Queue = 8
			c.Workers = 2
			c.BreakerMin = 4
			c.BreakerWindow = 8
			c.BreakerRate = 0.3
			c.BreakerCooldown = 100 * time.Millisecond
			c.BreakerProbes = 1
			c.RetryAttempts = 2
			c.DeadlineDef = 2 * time.Second
			c.DeadlineMax = 5 * time.Second
		},
		onTrans: func(from, to resilience.State) {
			transMu.Lock()
			transitions = append(transitions, from.String()+"->"+to.String())
			transMu.Unlock()
		},
	})

	const (
		workers       = 8
		perWorker     = 12
		deadlineSlack = 2 * time.Second
	)
	canonical := struct {
		sync.Mutex
		bytes []byte
	}{}
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(uint64(w) + 100)
			for i := 0; i < perWorker; i++ {
				// A third of the traffic is a fixed canary; the rest is a
				// randomized blend, some of it poisoned to fail every read.
				var body string
				canary := i%3 == 0
				if canary {
					body = `{"mix":"Jsb(4,2,2)","seed":42,"samples":3,"deadline_ms":5000}`
				} else {
					req := ScheduleRequest{
						Mix:        "Jsb(5,2,2)",
						Seed:       r.Uint64() % 50,
						Samples:    3,
						DeadlineMS: int64(100 + r.Uint64()%900),
					}
					if r.Float64() < 0.3 {
						req.Fault = &faults.Config{FailRate: 1} // guaranteed failure
					}
					b, _ := json.Marshal(req)
					body = string(b)
				}
				// The clamped deadline: the canary asks for 5s (the server
				// max), load requests ask for at most 1s.
				deadline := 5*time.Second + deadlineSlack
				if !canary {
					deadline = time.Second + deadlineSlack
				}
				start := time.Now()
				status, resp, err := tryPostSchedule(ts, body, fmt.Sprintf("w%d", w))
				elapsed := time.Since(start)
				if err != nil {
					errs <- fmt.Errorf("transport: %w", err)
					continue
				}
				if elapsed > deadline {
					errs <- fmt.Errorf("request waited %v, past its deadline budget", elapsed)
				}
				switch status {
				case http.StatusOK:
					if canary {
						canonical.Lock()
						if canonical.bytes == nil {
							canonical.bytes = resp
						} else if !bytes.Equal(canonical.bytes, resp) {
							errs <- fmt.Errorf("determinism violation:\n%s\n%s", canonical.bytes, resp)
						}
						canonical.Unlock()
					}
				case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
					// Shed, broken, or out of time: all graceful.
				default:
					errs <- fmt.Errorf("unexpected status %d: %s", status, resp)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The queue never grew past its bound.
	if st := srv.queue.Stats(); st.MaxDepth > st.Cap {
		t.Fatalf("queue depth %d exceeded cap %d", st.MaxDepth, st.Cap)
	}
	// The canary succeeded at least once, deterministically.
	if canonical.bytes == nil {
		t.Fatal("canary never succeeded during the soak")
	}
	// With the poison stream stopped, clean traffic must bring the breaker
	// back to closed within a few cooldown rounds.
	// (Fresh seeds each probe: a cached response would short-circuit ahead
	// of the breaker and never report an outcome.)
	for i := 0; i < 50 && srv.breaker.State() != resilience.Closed; i++ {
		time.Sleep(120 * time.Millisecond)
		body := fmt.Sprintf(`{"mix":"Jsb(4,2,2)","seed":%d,"samples":3,"deadline_ms":5000}`, 10_000+i)
		tryPostSchedule(ts, body, "recover")
	}
	if srv.breaker.State() != resilience.Closed {
		t.Errorf("breaker did not recover after the poison stream stopped (state %v)", srv.breaker.State())
	}

	// The poisoned stream opened the breaker at least once, and the
	// recovery above produced a half-open->closed transition.
	transMu.Lock()
	seq := append([]string(nil), transitions...)
	transMu.Unlock()
	var opened, closed bool
	for _, tr := range seq {
		if tr == "closed->open" || tr == "half-open->open" {
			opened = true
		}
		if tr == "half-open->closed" {
			closed = true
		}
	}
	if !opened {
		t.Errorf("breaker never opened under 30%% poison (transitions: %v)", seq)
	}
	if opened && !closed {
		t.Errorf("breaker opened but never closed again (transitions: %v)", seq)
	}

	// Shutdown under residual load drains and checkpoints; the flushed
	// cache must be loadable and hold the canary's response.
	if err := srv.shutdown(10*time.Second, nil); err != nil {
		t.Fatalf("post-soak shutdown: %v", err)
	}
	snap, err := checkpoint.Load(ckptPath)
	if err != nil {
		t.Fatalf("loading soak checkpoint: %v", err)
	}
	if len(snap.Shards) == 0 {
		t.Fatal("soak checkpoint holds no responses")
	}
}
