package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"symbios/internal/checkpoint"
	"symbios/internal/integrity"
	"symbios/internal/leakcheck"
)

// checkDigest reads a response body and verifies it against the
// X-Content-Digest stamp, returning the bytes read.
func checkDigest(t *testing.T, what string, resp *http.Response) []byte {
	t.Helper()
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("%s: reading body: %v", what, err)
	}
	if err := integrity.Check(resp.Header.Get(integrity.Header), body); err != nil {
		t.Fatalf("%s: digest check: %v (header %q, %d body bytes)",
			what, err, resp.Header.Get(integrity.Header), len(body))
	}
	return body
}

// TestResponsesCarryVerifiableDigest checks every JSON write path — schedule
// answers, error bodies, stats, and the cache export — stamps a digest that
// verifies against the exact bytes a client reads.
func TestResponsesCarryVerifiableDigest(t *testing.T) {
	leakcheck.Check(t)
	rec := checkpoint.NewRecorder(filepath.Join(t.TempDir(), "c.ckpt"),
		checkpoint.Meta{Exp: "sosd", Scale: "serve", Seed: 1}, 1)
	_, ts := newTestServer(t, testServerOpts{rec: rec})

	resp := postRaw(t, ts, `{"mix":"Jsb(4,2,2)","seed":7,"samples":2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule = %d", resp.StatusCode)
	}
	checkDigest(t, "schedule 200", resp)

	// A cache hit serves recorded bytes through the same stamped path.
	resp = postRaw(t, ts, `{"mix":"Jsb(4,2,2)","seed":7,"samples":2}`)
	if resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("second ask X-Cache = %q, want hit", resp.Header.Get("X-Cache"))
	}
	checkDigest(t, "schedule cache hit", resp)

	resp = postRaw(t, ts, `not json`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad request = %d", resp.StatusCode)
	}
	checkDigest(t, "error 400", resp)

	for _, path := range []string{"/statz", "/v1/mixes", "/v1/cache/export"} {
		r, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, r.StatusCode)
		}
		checkDigest(t, path, r)
	}
}

// TestDivergenceInjection checks the -divergence fault: the perturbed answer
// is parseable, deterministic across asks (cache hits included), carries a
// *valid* digest — it must model an honestly-wrong replica, not a broken
// wire — and never leaks into the cache export siblings warm from.
func TestDivergenceInjection(t *testing.T) {
	leakcheck.Check(t)
	rec := checkpoint.NewRecorder(filepath.Join(t.TempDir(), "c.ckpt"),
		checkpoint.Meta{Exp: "sosd", Scale: "serve", Seed: 1}, 1)
	_, ts := newTestServer(t, testServerOpts{rec: rec, cfg: func(c *serverConfig) {
		c.Divergence = 1
	}})

	req := `{"mix":"Jsb(4,2,2)","seed":7,"samples":2}`
	resp := postRaw(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule = %d", resp.StatusCode)
	}
	first := checkDigest(t, "divergent answer", resp)
	if !bytes.Contains(first, []byte(`"divergent":true`)) {
		t.Fatalf("divergence=1 answer lacks the perturbation: %s", first)
	}
	var parsed map[string]any
	if err := json.Unmarshal(first, &parsed); err != nil {
		t.Fatalf("perturbed answer is not valid JSON: %v\n%s", err, first)
	}

	resp = postRaw(t, ts, req)
	if resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("second ask X-Cache = %q, want hit", resp.Header.Get("X-Cache"))
	}
	second := checkDigest(t, "divergent cache hit", resp)
	if !bytes.Equal(first, second) {
		t.Fatalf("divergent answers differ across asks:\nfirst:  %s\nsecond: %s", first, second)
	}

	// The cache records honest bytes only, so exports cannot spread the fault.
	r, err := ts.Client().Get(ts.URL + "/v1/cache/export")
	if err != nil {
		t.Fatal(err)
	}
	export := checkDigest(t, "export", r)
	if bytes.Contains(export, []byte("divergent")) {
		t.Fatalf("perturbation leaked into the cache export: %s", export)
	}
}

// TestDivergenceWindowCloses checks a replica past its -divergence-for
// window answers honestly again.
func TestDivergenceWindowCloses(t *testing.T) {
	leakcheck.Check(t)
	srv, ts := newTestServer(t, testServerOpts{cfg: func(c *serverConfig) {
		c.Divergence = 1
		c.DivergenceFor = time.Minute
	}})
	srv.started = time.Now().Add(-time.Hour) // uptime well past the window

	resp := postRaw(t, ts, `{"mix":"Jsb(4,2,2)","seed":7,"samples":2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule = %d", resp.StatusCode)
	}
	body := checkDigest(t, "post-window answer", resp)
	if bytes.Contains(body, []byte("divergent")) {
		t.Fatalf("answer still perturbed after the divergence window closed: %s", body)
	}
}

// TestWarmCorruptExportRefused checks the warm-up digest gate: a sibling
// whose export bytes do not match their digest stamp contributes nothing,
// and the warm-up falls through to the next (honest) sibling.
func TestWarmCorruptExportRefused(t *testing.T) {
	leakcheck.Check(t)
	meta := checkpoint.Meta{Exp: "sosd", Scale: "serve", Seed: 1}

	// The corrupt sibling serves a plausible snapshot whose digest was
	// stamped before a byte flipped — exactly what a flaky wire produces.
	snap, err := json.Marshal(checkpoint.Snapshot{
		Meta:   meta,
		Shards: map[string]json.RawMessage{"k": json.RawMessage(`{"x":1}`)},
	})
	if err != nil {
		t.Fatal(err)
	}
	snap = append(snap, '\n')
	corrupt := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(integrity.Header, integrity.Digest(snap))
		mangled := append([]byte{}, snap...)
		mangled[len(mangled)/2] ^= 0x10
		w.Write(mangled)
	}))
	defer corrupt.Close()

	recA := checkpoint.NewRecorder(filepath.Join(t.TempDir(), "a.ckpt"), meta, 1)
	_, tsA := newTestServer(t, testServerOpts{rec: recA})
	postSchedule(t, tsA, `{"mix":"Jsb(4,2,2)","seed":1,"samples":2}`, "t")

	recB := checkpoint.NewRecorder(filepath.Join(t.TempDir(), "b.ckpt"), meta, 1)
	srvB, _ := newTestServer(t, testServerOpts{rec: recB})
	srvB.warming.Store(true)
	srvB.warmFromSiblings([]string{corrupt.URL, tsA.URL}, 5*time.Second)

	if srvB.warming.Load() {
		t.Fatal("warming bit still up")
	}
	if got, want := recB.Shards(), recA.Shards(); got != want || got < 1 {
		t.Fatalf("warmed %d shards, want the honest sibling's %d (corrupt one refused)", got, want)
	}

	// A digest-less export is refused outright: warm-up transfers are held
	// to the strict envelope even where request relays tolerate absence.
	bare := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(snap)
	}))
	defer bare.Close()
	recC := checkpoint.NewRecorder(filepath.Join(t.TempDir(), "c.ckpt"), meta, 1)
	srvC, _ := newTestServer(t, testServerOpts{rec: recC})
	srvC.warming.Store(true)
	srvC.warmFromSiblings([]string{bare.URL}, 5*time.Second)
	if recC.Shards() != 0 {
		t.Fatalf("digest-less export adopted %d shards, want 0", recC.Shards())
	}
}
