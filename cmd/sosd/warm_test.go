package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"symbios/internal/checkpoint"
	"symbios/internal/faults"
	"symbios/internal/leakcheck"
	"symbios/internal/resilience"
)

// postRaw sends a schedule request and returns the full response, headers
// included (postSchedule discards them).
func postRaw(t *testing.T, ts *httptest.Server, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/schedule", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Client-ID", "t")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// retryAfterSeconds parses the Retry-After header, failing on absence.
func retryAfterSeconds(t *testing.T, resp *http.Response) int {
	t.Helper()
	v := resp.Header.Get("Retry-After")
	if v == "" {
		t.Fatal("shed response carries no Retry-After")
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer", v)
	}
	return n
}

// TestLimiterShedRetryAfterDerived checks a 429's Retry-After reflects the
// limiter's actual refill time instead of a constant: at 0.25 tokens/s an
// empty bucket needs ~4s to hold a token again.
func TestLimiterShedRetryAfterDerived(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, testServerOpts{cfg: func(c *serverConfig) {
		c.Rate = 0.25
		c.Burst = 1
	}})
	req := `{"mix":"Jsb(4,2,2)","seed":1,"samples":2}`
	resp := postRaw(t, ts, req) // spends the only token
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request = %d, want 200", resp.StatusCode)
	}
	resp = postRaw(t, ts, req)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request = %d, want 429", resp.StatusCode)
	}
	if secs := retryAfterSeconds(t, resp); secs < 2 || secs > 4 {
		t.Fatalf("Retry-After = %ds, want the ~4s refill time (not the old constant 1)", secs)
	}
}

// TestBreakerShedRetryAfterDerived checks an open-breaker 503 carries the
// remaining cooldown as Retry-After.
func TestBreakerShedRetryAfterDerived(t *testing.T) {
	leakcheck.Check(t)
	srv, ts := newTestServer(t, testServerOpts{
		chaos: &faults.Config{FailRate: 1},
		cfg: func(c *serverConfig) {
			c.BreakerMin = 2
			c.BreakerWindow = 4
			c.BreakerCooldown = 30 * time.Second
			c.BreakerProbes = 1
			c.RetryAttempts = 1
		},
	})
	req := `{"mix":"Jsb(4,2,2)","seed":1,"samples":2}`
	for i := 0; i < 4 && srv.breaker.State() != resilience.Open; i++ {
		resp := postRaw(t, ts, req)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if srv.breaker.State() != resilience.Open {
		t.Fatal("breaker never opened under guaranteed failures")
	}
	resp := postRaw(t, ts, req)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open-breaker request = %d, want 503", resp.StatusCode)
	}
	if secs := retryAfterSeconds(t, resp); secs < 25 || secs > 30 {
		t.Fatalf("Retry-After = %ds, want the ~30s remaining cooldown", secs)
	}
}

// TestCacheExport checks the export endpoint serves the recorded cache (and
// 404s without a recorder).
func TestCacheExport(t *testing.T) {
	leakcheck.Check(t)
	meta := checkpoint.Meta{Exp: "sosd", Scale: "serve", Seed: 1}
	rec := checkpoint.NewRecorder(filepath.Join(t.TempDir(), "c.ckpt"), meta, 1)
	_, ts := newTestServer(t, testServerOpts{rec: rec})

	postSchedule(t, ts, `{"mix":"Jsb(4,2,2)","seed":1,"samples":2}`, "t")

	resp, err := ts.Client().Get(ts.URL + "/v1/cache/export")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export = %d: %s", resp.StatusCode, data)
	}
	var snap checkpoint.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("export decode: %v", err)
	}
	if snap.Meta != meta || len(snap.Shards) != 1 {
		t.Fatalf("export snapshot = %+v with %d shards, want meta %+v and 1 shard",
			snap.Meta, len(snap.Shards), meta)
	}

	// Without a recorder the endpoint is absent, not an empty snapshot.
	_, tsNone := newTestServer(t, testServerOpts{})
	resp, err = tsNone.Client().Get(tsNone.URL + "/v1/cache/export")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("export without recorder = %d, want 404", resp.StatusCode)
	}
}

// TestWarmingGatesReadyz checks /readyz holds at 503 while the warming bit
// is up, so a fleet front never routes to a half-warmed node.
func TestWarmingGatesReadyz(t *testing.T) {
	leakcheck.Check(t)
	srv, ts := newTestServer(t, testServerOpts{})
	srv.warming.Store(true)
	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !bytes.Contains(data, []byte("warming")) {
		t.Fatalf("readyz while warming = %d %s, want 503 warming", resp.StatusCode, data)
	}
	srv.warming.Store(false)
	resp, err = ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after warming = %d, want 200", resp.StatusCode)
	}
}

// TestWarmFromSibling is the warm-up round trip: a cold node adopts a
// sibling's cache and serves its first request as a byte-identical cache
// hit, never re-evaluating what the fleet already computed.
func TestWarmFromSibling(t *testing.T) {
	leakcheck.Check(t)
	meta := checkpoint.Meta{Exp: "sosd", Scale: "serve", Seed: 1}
	recA := checkpoint.NewRecorder(filepath.Join(t.TempDir(), "a.ckpt"), meta, 1)
	_, tsA := newTestServer(t, testServerOpts{rec: recA})

	req := `{"mix":"Jsb(4,2,2)","seed":7,"samples":2}`
	respA := postRaw(t, tsA, req)
	wantBody, _ := io.ReadAll(respA.Body)
	respA.Body.Close()
	if respA.StatusCode != http.StatusOK {
		t.Fatalf("source request = %d", respA.StatusCode)
	}

	recB := checkpoint.NewRecorder(filepath.Join(t.TempDir(), "b.ckpt"), meta, 1)
	srvB, tsB := newTestServer(t, testServerOpts{rec: recB})
	srvB.warming.Store(true)
	srvB.warmFromSiblings([]string{tsA.URL}, 5*time.Second)

	if srvB.warming.Load() {
		t.Fatal("warming bit still up after warmFromSiblings returned")
	}
	if got, want := recB.Shards(), recA.Shards(); got != want || got < 1 {
		t.Fatalf("warmed recorder holds %d shards, want the sibling's %d", got, want)
	}

	respB := postRaw(t, tsB, req)
	gotBody, _ := io.ReadAll(respB.Body)
	respB.Body.Close()
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("post-warm request = %d", respB.StatusCode)
	}
	if respB.Header.Get("X-Cache") != "hit" {
		t.Fatalf("post-warm X-Cache = %q, want hit (served from the transferred cache)",
			respB.Header.Get("X-Cache"))
	}
	if !bytes.Equal(gotBody, wantBody) {
		t.Fatalf("post-warm body differs from the sibling's:\nsibling: %s\nwarmed:  %s", wantBody, gotBody)
	}
}

// TestWarmMetaMismatchFallsThrough checks a sibling recorded under a
// different run identity is refused and the node starts cold instead of
// adopting a foreign cache.
func TestWarmMetaMismatchFallsThrough(t *testing.T) {
	leakcheck.Check(t)
	recA := checkpoint.NewRecorder(filepath.Join(t.TempDir(), "a.ckpt"),
		checkpoint.Meta{Exp: "sosd", Scale: "serve", Seed: 1}, 1)
	_, tsA := newTestServer(t, testServerOpts{rec: recA})
	postSchedule(t, tsA, `{"mix":"Jsb(4,2,2)","seed":1,"samples":2}`, "t")

	recB := checkpoint.NewRecorder(filepath.Join(t.TempDir(), "b.ckpt"),
		checkpoint.Meta{Exp: "sosd-chaos", Scale: "serve", Seed: 1}, 1)
	srvB, _ := newTestServer(t, testServerOpts{rec: recB})
	srvB.warming.Store(true)
	srvB.warmFromSiblings([]string{tsA.URL}, 5*time.Second)

	if srvB.warming.Load() {
		t.Fatal("warming bit still up after a refused warm-up")
	}
	if recB.Shards() != 0 {
		t.Fatalf("mismatched-meta warm-up adopted %d shards, want 0", recB.Shards())
	}
}

// TestWarmDeadSiblingFallsThrough checks an unreachable sibling degrades to
// a cold start rather than wedging the warming bit forever.
func TestWarmDeadSiblingFallsThrough(t *testing.T) {
	leakcheck.Check(t)
	rec := checkpoint.NewRecorder(filepath.Join(t.TempDir(), "c.ckpt"),
		checkpoint.Meta{Exp: "sosd", Scale: "serve", Seed: 1}, 1)
	srv, _ := newTestServer(t, testServerOpts{rec: rec})
	srv.warming.Store(true)
	srv.warmFromSiblings([]string{"http://127.0.0.1:1"}, time.Second)
	if srv.warming.Load() {
		t.Fatal("warming bit still up after every sibling failed")
	}
	if rec.Shards() != 0 {
		t.Fatalf("dead-sibling warm-up adopted %d shards", rec.Shards())
	}
}
