package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"symbios/internal/integrity"
	"symbios/internal/obs"
	"symbios/internal/resilience"
)

// Batch endpoint limits. The item bound keeps one envelope from monopolizing
// the evaluator (64 items of 32 samples each is already ~2k simulations);
// the byte bound is the per-item cap times the item bound, so a batch of
// maximal legitimate requests always fits.
const (
	// MaxBatchItems bounds the requests array of POST /v1/schedule/batch.
	MaxBatchItems = 64
	// MaxBatchRequestBytes bounds the whole batch request body.
	MaxBatchRequestBytes = MaxBatchItems * MaxRequestBytes
)

// batchRequest is the body of POST /v1/schedule/batch: an array of raw
// ScheduleRequest bodies. Items stay raw JSON through the envelope decode so
// each one is validated — and each validation error reported — individually,
// with exactly the bytes the singleton decoder would have seen.
type batchRequest struct {
	Requests []json.RawMessage `json:"requests"`
}

// BatchItem is one per-item verdict inside a batch response envelope. For a
// 200 item, Body is the exact singleton response body minus its trailing
// newline, Cache is the X-Cache header value ("hit" or "miss") the singleton
// answer would have carried, and Digest is the singleton response digest —
// computed over Body plus the trailing newline — so a client reconstructing
// the singleton wire bytes (append '\n') can verify each item independently
// of its siblings and of the envelope. Error items carry the singleton error
// body and status the same way, with Cache empty.
type BatchItem struct {
	Status int             `json:"status"`
	Cache  string          `json:"cache,omitempty"`
	Digest string          `json:"digest"`
	Body   json.RawMessage `json:"body"`
}

// BatchResponse is the body of a successful batch envelope. The envelope
// itself is digest-stamped like every other response; per-item digests sit
// inside it.
type BatchResponse struct {
	Items []BatchItem `json:"items"`
}

// DecodeBatchRequest parses and validates a batch envelope, returning the
// raw per-item bodies. Like DecodeScheduleRequest it must never panic on
// hostile input; item-level validation is deliberately NOT done here — a
// malformed item is a per-item 400, not a batch-level one.
func DecodeBatchRequest(data []byte) ([]json.RawMessage, error) {
	if len(data) > MaxBatchRequestBytes {
		return nil, fmt.Errorf("batch body exceeds %d bytes", MaxBatchRequestBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var env batchRequest
	if err := dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("invalid JSON: %v", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("trailing data after batch object")
	}
	if len(env.Requests) == 0 {
		return nil, fmt.Errorf("batch carries no requests")
	}
	if len(env.Requests) > MaxBatchItems {
		return nil, fmt.Errorf("batch carries %d requests, max %d", len(env.Requests), MaxBatchItems)
	}
	return env.Requests, nil
}

// singletonDigest computes the digest a singleton response for raw would
// carry: the hash is over the wire bytes, which append a trailing newline.
func singletonDigest(raw []byte) string {
	wire := make([]byte, 0, len(raw)+1)
	wire = append(wire, raw...)
	wire = append(wire, '\n')
	return integrity.Digest(wire)
}

// batchItemOK wraps singleton response bytes as a 200 item.
func batchItemOK(raw []byte, hit bool) BatchItem {
	cache := "miss"
	if hit {
		cache = "hit"
	}
	return BatchItem{
		Status: http.StatusOK,
		Cache:  cache,
		Digest: singletonDigest(raw),
		Body:   json.RawMessage(raw),
	}
}

// batchItemError builds an error item whose body is byte-identical to the
// singleton httpError body for the same message.
func batchItemError(status int, format string, args ...any) BatchItem {
	body, _ := json.Marshal(map[string]string{"error": fmt.Sprintf(format, args...)})
	return BatchItem{
		Status: status,
		Digest: singletonDigest(body),
		Body:   json.RawMessage(body),
	}
}

// batchWork is one cache-missing batch item headed for evaluation.
type batchWork struct {
	idx int
	req ScheduleRequest
	key string
}

// handleScheduleBatch answers a bounded array of schedule requests in one
// envelope. The batch rides the same pipeline as a singleton request —
// drain gate, admission limiter (charged once per item), circuit breaker,
// deadline budget, bounded queue — while lookup, recording, evaluation and
// error reporting happen per item, so every item's bytes are byte-identical
// to the singleton answer for the same request. Item failures are isolated:
// a malformed item 400s that item, not the batch. Only batch-level refusals
// (drain, admission, breaker, queue, deadline) fail the whole envelope, and
// they use the same statuses and Retry-After hints the singleton path does.
func (s *server) handleScheduleBatch(w http.ResponseWriter, r *http.Request) {
	mode := s.mode()
	w.Header().Set("X-Brownout-Mode", strconv.Itoa(mode))
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	t0 := time.Now()
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxBatchRequestBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	items, err := DecodeBatchRequest(body)
	s.obs.stageDecode.ObserveSince(t0)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.obs.batchRequests.Inc()

	// The limiter charges one token per item — a batch of n is the same
	// admission load as n singletons. This runs after the envelope decode
	// (the charge needs the item count) but before per-item validation, like
	// the singleton path charges before decoding.
	t0 = time.Now()
	allowed := s.limiter.AllowN(len(items))
	s.obs.stageLimiter.ObserveSince(t0)
	if !allowed {
		setRetryAfter(w, s.limiter.RetryAfter())
		httpError(w, http.StatusTooManyRequests, "admission rate exceeded")
		return
	}

	out := make([]BatchItem, len(items))
	var evals []batchWork
	seen := make(map[string]int, len(items))
	var maxDeadline int64
	for i, rawReq := range items {
		req, derr := DecodeScheduleRequest(rawReq)
		if derr != nil {
			out[i] = batchItemError(http.StatusBadRequest, "%v", derr)
			continue
		}
		if req.Fault != nil && s.eval.chaos == nil {
			out[i] = batchItemError(http.StatusBadRequest, "fault injection requires a server started with -chaos")
			continue
		}
		if req.Mode == "adaptive" {
			// The batch pass is a rank-only fast path; an adaptive run cannot
			// share the interleaved advance (it re-decides its schedule from
			// its own measurements mid-run). Clients send those singly.
			out[i] = batchItemError(http.StatusBadRequest, "mode \"adaptive\" is not batchable (send it to /v1/schedule)")
			continue
		}
		key := req.Fingerprint()
		if first, dup := seen[key]; dup {
			// Two items with one fingerprint would race one cache slot and
			// waste one evaluation; a client batching duplicates is confused
			// (the fleet batcher coalesces them before they get here).
			out[i] = batchItemError(http.StatusBadRequest, "duplicate of item %d in this batch", first)
			continue
		}
		seen[key] = i
		if req.DeadlineMS > maxDeadline {
			maxDeadline = req.DeadlineMS
		}
		t0 = time.Now()
		var cached json.RawMessage
		hit, lerr := s.rec.Lookup(key, &cached)
		s.obs.stageCache.ObserveSince(t0)
		if lerr == nil && hit {
			s.obs.cacheHits.Inc()
			out[i] = batchItemOK(s.maybeDiverge(key, cached), true)
			continue
		}
		evals = append(evals, batchWork{idx: i, req: req, key: key})
	}

	if len(evals) > 0 {
		t0 = time.Now()
		report, berr := s.breaker.Allow()
		s.obs.stageBreaker.ObserveSince(t0)
		if berr != nil {
			setRetryAfter(w, s.breaker.RetryAfter())
			httpError(w, http.StatusServiceUnavailable, "%v", berr)
			return
		}
		// One deadline budget for the whole batch, clamped like a singleton's:
		// the most patient item's deadline bounds everyone (items were grouped
		// by a client that considers them one unit of work).
		ctx, cancel := resilience.WithBudget(r.Context(), time.Duration(maxDeadline)*time.Millisecond,
			s.cfg.DeadlineDef, s.cfg.DeadlineMax)
		defer cancel()
		stop := context.AfterFunc(s.base, cancel)
		defer stop()
		ctx = obs.WithTracer(ctx, s.obs.tracer)

		client := clientID(r)
		rr := mode >= 2
		tQueue := time.Now()
		qerr := s.queue.Do(ctx, func(ctx context.Context) error {
			return s.evalBatchItems(ctx, evals, out, rr, client)
		})
		s.obs.stageQueue.ObserveSince(tQueue)
		switch {
		case qerr == nil:
			report(resilience.Success)
		case errors.Is(qerr, resilience.ErrSaturated), errors.Is(qerr, resilience.ErrOverloaded), errors.Is(qerr, resilience.ErrDraining):
			report(resilience.Skipped)
			setRetryAfter(w, s.queue.SojournEstimate())
			httpError(w, http.StatusServiceUnavailable, "%v", qerr)
			return
		case errors.Is(qerr, context.DeadlineExceeded):
			report(resilience.Failure)
			httpError(w, http.StatusGatewayTimeout, "deadline exceeded")
			return
		case errors.Is(qerr, context.Canceled):
			report(resilience.Skipped)
			httpError(w, http.StatusServiceUnavailable, "request cancelled")
			return
		default:
			report(resilience.Failure)
			httpError(w, http.StatusInternalServerError, "%v", qerr)
			return
		}
	}

	for _, item := range out {
		s.obs.countBatchItem(item)
	}
	s.writeJSON(w, http.StatusOK, BatchResponse{Items: out})
}

// evalBatchItems evaluates the cache-missing items and fills their slots in
// out. Rank items go through the chunked batched ranking pass; an item the
// batched pass could not finish (a transient counter-read loss, most often)
// falls back to the full singleton retry path, so its final bytes — success
// or error — match what the singleton endpoint would have produced. A dead
// context aborts the remaining work and fails the whole batch, exactly as it
// fails a singleton request.
func (s *server) evalBatchItems(ctx context.Context, evals []batchWork, out []BatchItem, rr bool, client string) error {
	if rr {
		// Ladder floor: round-robin answers, uncached, like the singleton
		// path at mode 2.
		for _, wk := range evals {
			resp, rerr := roundRobin(wk.req)
			if rerr != nil {
				out[wk.idx] = batchItemError(http.StatusInternalServerError, "%v", rerr)
				continue
			}
			raw, merr := json.Marshal(resp)
			if merr != nil {
				s.obs.encodeFailures.Inc()
				out[wk.idx] = batchItemError(http.StatusInternalServerError, "encoding response: %v", merr)
				continue
			}
			out[wk.idx] = batchItemOK(s.maybeDiverge(wk.key, raw), false)
		}
		return ctx.Err()
	}

	reqs := make([]ScheduleRequest, len(evals))
	for i, wk := range evals {
		reqs[i] = wk.req
	}
	// The batched pass runs as attempt 0 — the same ordinal the singleton
	// path's first try uses — so fault injection draws, and therefore every
	// byte of the result, line up with a singleton evaluation.
	resps, errs := s.eval.rankBatch(ctx, reqs, 0)
	for i, wk := range evals {
		resp, rerr := resps[i], errs[i]
		if rerr != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			// The batched attempt 0 failed; rerun the item on the singleton
			// retry path. Deterministic failures replay attempt 0 identically
			// and surface the same error; transients get the same budgeted
			// retries (attempt 1, 2, ...) a singleton request would.
			s.obs.batchFallbacks.Inc()
			resp, rerr = s.predictWithRetry(ctx, wk.req, client)
			if rerr != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				out[wk.idx] = batchItemEvalError(rerr)
				continue
			}
		}
		raw, merr := json.Marshal(resp)
		if merr != nil {
			s.obs.encodeFailures.Inc()
			out[wk.idx] = batchItemError(http.StatusInternalServerError, "encoding response: %v", merr)
			continue
		}
		if rerr := s.rec.Record(wk.key, json.RawMessage(raw)); rerr != nil {
			s.logger.Printf("cache record: %v", rerr)
		}
		out[wk.idx] = batchItemOK(s.maybeDiverge(wk.key, raw), false)
	}
	return ctx.Err()
}

// batchItemEvalError maps an evaluation error to the per-item status the
// singleton error switch would have chosen (retryable trouble is 503, the
// rest 500; deadline and cancellation fail the batch before this runs).
func batchItemEvalError(err error) BatchItem {
	if errors.Is(err, resilience.ErrBudgetExhausted) || isTransient(err) {
		return batchItemError(http.StatusServiceUnavailable, "%v", err)
	}
	return batchItemError(http.StatusInternalServerError, "%v", err)
}
