package main

import (
	"net/http"
	"strconv"
	"time"

	"symbios/internal/obs"
	"symbios/internal/resilience"
)

// serverObs holds sosd's resolved metric handles. The struct always
// exists on the server; with metrics disabled (nil registry) every handle
// inside is nil and all recording degrades to free no-ops, which is what
// keeps the obs-on/off byte-identity test honest — both configurations
// run the same code.
type serverObs struct {
	reg *obs.Registry

	// One latency histogram per pipeline stage, in pipeline order:
	// limiter -> decode -> cache -> breaker -> queue -> retry.
	stageLimiter *obs.Histogram
	stageDecode  *obs.Histogram
	stageCache   *obs.Histogram
	stageBreaker *obs.Histogram
	stageQueue   *obs.Histogram
	stageRetry   *obs.Histogram

	requestSeconds *obs.Histogram
	encodeFailures *obs.Counter
	cacheHits      *obs.Counter
	warmShards     *obs.Counter
	warmBytes      *obs.Counter

	// Batch endpoint counters: envelopes admitted, and items whose batched
	// rank attempt failed and reran on the singleton retry path.
	batchRequests  *obs.Counter
	batchFallbacks *obs.Counter

	// tracer feeds SOS phase spans from the evaluator's adaptive runs into
	// obs_span_seconds. No JSONL sink in the service; spans surface only as
	// histogram series on /metrics.
	tracer *obs.Tracer
}

// newServerObs registers sosd's metric families. A nil registry yields
// the all-nil (disabled) handle set.
func newServerObs(reg *obs.Registry) *serverObs {
	o := &serverObs{reg: reg}
	if reg == nil {
		return o
	}
	stage := func(name string) *obs.Histogram {
		return reg.Histogram("sosd_stage_seconds",
			"Latency of each /v1/schedule pipeline stage.",
			nil, obs.L("stage", name))
	}
	o.stageLimiter = stage("limiter")
	o.stageDecode = stage("decode")
	o.stageCache = stage("cache")
	o.stageBreaker = stage("breaker")
	o.stageQueue = stage("queue")
	o.stageRetry = stage("retry")
	o.requestSeconds = reg.Histogram("sosd_http_request_seconds",
		"End-to-end latency of every HTTP request.", nil)
	o.encodeFailures = reg.Counter("sosd_encode_failures_total",
		"Responses whose JSON encoding failed (served as 500s).")
	o.cacheHits = reg.Counter("sosd_cache_hits_total",
		"Schedule requests answered from the response cache.")
	o.warmShards = reg.Counter("sosd_warm_shards_total",
		"Cached responses adopted from a fleet sibling during boot warm-up.")
	o.warmBytes = reg.Counter("sosd_warm_bytes_total",
		"Bytes transferred from fleet siblings during cache warm-up.")
	o.batchRequests = reg.Counter("sosd_batch_requests_total",
		"Batch envelopes admitted on /v1/schedule/batch.")
	o.batchFallbacks = reg.Counter("sosd_batch_fallbacks_total",
		"Batch items rerun on the singleton retry path after the batched rank attempt failed.")
	o.tracer = obs.NewTracer(nil, reg)
	return o
}

// countBatchItem tallies one finished batch item by outcome: "hit" and
// "miss" for 200s (mirroring X-Cache), "error" for everything else. Series
// register lazily like the per-status request counter.
func (o *serverObs) countBatchItem(item BatchItem) {
	if o.reg == nil {
		return
	}
	result := "error"
	if item.Status == http.StatusOK {
		result = item.Cache
	}
	o.reg.Counter("sosd_batch_items_total",
		"Batch items answered, by outcome (hit, miss, error).",
		obs.L("result", result)).Inc()
}

// countRequest tallies one finished HTTP request by status code. Series
// are registered on first use per code; registration is idempotent and
// the exposition stays sorted, so lazily appearing codes are harmless.
func (o *serverObs) countRequest(code int) {
	if o.reg == nil {
		return
	}
	o.reg.Counter("sosd_http_requests_total",
		"HTTP requests served, by status code.",
		obs.L("code", strconv.Itoa(code))).Inc()
}

// brownoutTransition records one ladder step: a direction-labelled counter
// plus a tracer event (obs_events_total). Observability stays read-only —
// the transition has already happened when this runs.
func (o *serverObs) brownoutTransition(from, to int) {
	dir := "down"
	if to < from {
		dir = "up"
	}
	if o.reg != nil {
		o.reg.Counter("sosd_brownout_transitions_total",
			"Brownout ladder transitions, by direction (down = degrading).",
			obs.L("dir", dir)).Inc()
	}
	o.tracer.Event("brownout/" + dir)
}

// registerPipelineGauges exposes the live pipeline state (/statz's
// numbers, continuously scrapeable). Scrape-time evaluation keeps them
// exact without per-request bookkeeping; each fn takes only its stage's
// own lock.
func (o *serverObs) registerPipelineGauges(s *server) {
	if o.reg == nil {
		return
	}
	o.reg.GaugeFunc("sosd_limiter_admitted", "Requests admitted by the rate limiter.",
		func() float64 { return float64(s.limiter.Stats().Admitted) })
	o.reg.GaugeFunc("sosd_limiter_shed", "Requests shed by the rate limiter.",
		func() float64 { return float64(s.limiter.Stats().Shed) })
	o.reg.GaugeFunc("sosd_breaker_state", "Circuit breaker state: 0 closed, 1 half-open, 2 open.",
		func() float64 {
			switch s.breaker.State() {
			case resilience.Open:
				return 2
			case resilience.HalfOpen:
				return 1
			}
			return 0
		})
	o.reg.GaugeFunc("sosd_breaker_opens", "Times the circuit breaker has opened.",
		func() float64 { return float64(s.breaker.Stats().Opens) })
	o.reg.GaugeFunc("sosd_queue_depth", "Requests currently queued or running.",
		func() float64 { return float64(s.queue.Stats().Depth) })
	o.reg.GaugeFunc("sosd_queue_max_depth", "High-water mark of the work queue.",
		func() float64 { return float64(s.queue.Stats().MaxDepth) })
	o.reg.GaugeFunc("sosd_queue_rejected", "Requests rejected by the saturated queue.",
		func() float64 { return float64(s.queue.Stats().Rejected) })
	o.reg.GaugeFunc("sosd_queue_overloaded", "Requests shed by sojourn-based (CoDel) overload control.",
		func() float64 { return float64(s.queue.Stats().Overloaded) })
	o.reg.GaugeFunc("sosd_queue_oldest_age_seconds", "Age of the oldest queued request.",
		func() float64 { return s.queue.OldestAge().Seconds() })
	o.reg.GaugeFunc("sosd_queue_sojourn_seconds", "Smoothed queued-time (sojourn) estimate at dequeue.",
		func() float64 { return s.queue.SojournEstimate().Seconds() })
	o.reg.GaugeFunc("sosd_brownout_mode", "Current degradation mode (0 full service, 2 most degraded).",
		func() float64 { return float64(s.mode()) })
	o.reg.GaugeFunc("sosd_retry_budget_exhausted", "Retries denied because a client's budget ran out.",
		func() float64 { return float64(s.budgets.Exhausted()) })
	o.reg.GaugeFunc("sosd_draining", "1 while the server is draining for shutdown.",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	if s.rec != nil {
		o.reg.GaugeFunc("sosd_cache_shards", "Responses held in the checkpoint-backed cache.",
			func() float64 { return float64(s.rec.Shards()) })
	}
}

// statusWriter captures the status code a handler writes.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps the route table with per-request accounting. With
// metrics disabled it returns h untouched, so the disabled path adds not
// even a clock read.
func (o *serverObs) instrument(h http.Handler) http.Handler {
	if o.reg == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h.ServeHTTP(sw, r)
		o.requestSeconds.ObserveSince(t0)
		o.countRequest(sw.code)
	})
}

// handleMetrics serves the Prometheus text exposition.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.obs.reg == nil {
		httpError(w, http.StatusNotFound, "metrics disabled")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.obs.reg.WritePrometheus(w); err != nil {
		// Headers are gone; all we can do is log the broken scrape.
		s.logger.Printf("metrics write: %v", err)
	}
}
