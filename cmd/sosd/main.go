// Command sosd serves the SOS scheduler as a small, resilient HTTP service:
// POST a jobmix and seed to /v1/schedule and get back the predictor-ranked
// coschedule (or a full adaptive-run verdict). The interesting part is not
// the route table but the failure behavior — every request passes admission
// control, a circuit breaker, a deadline budget, a bounded queue and a
// budgeted retry loop, so overload sheds instead of queuing unboundedly and
// a sick simulator backend fails fast instead of dragging every client
// down with it. See DESIGN.md section 10.
//
// Exit codes: 0 clean shutdown (SIGINT/SIGTERM drained), 1 internal error,
// 2 usage error.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"symbios/internal/buildinfo"
	"symbios/internal/checkpoint"
	"symbios/internal/experiments"
	"symbios/internal/faults"
	"symbios/internal/obs"
	"symbios/internal/resilience"
	"symbios/internal/rng"
)

// Exit codes.
const (
	exitOK       = 0
	exitInternal = 1
	exitUsage    = 2
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sosd", flag.ContinueOnError)
	fs.SetOutput(stderr)

	var (
		addr    = fs.String("addr", "127.0.0.1:8723", "listen address (host:port; port 0 picks a free port)")
		scale   = fs.String("scale", "serve", "cycle budget: serve, quick or default")
		chaos   = fs.Float64("chaos", 0, "probability of injected counter-read failure per read (chaos mode; also unlocks per-request fault blocks)")
		ckpt    = fs.String("checkpoint", "", "response-cache checkpoint file (resumed when it exists)")
		every   = fs.Int("checkpoint-every", 8, "flush the checkpoint every N recorded responses")
		warm    = fs.String("warm-from", "", "comma-separated sibling sosd base URLs to warm the response cache from on boot (requires -checkpoint; /readyz reports 503 until the transfer settles)")
		warmTO  = fs.Duration("warm-timeout", 10*time.Second, "per-sibling cache warm-up fetch timeout")
		drain   = fs.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
		pprofOn = fs.Bool("pprof", false, "mount net/http/pprof endpoints under /debug/pprof/")
		version = fs.Bool("version", false, "print version and exit")

		deadlineDef = fs.Duration("deadline-default", 5*time.Second, "per-request deadline when the client sets none")
		deadlineMax = fs.Duration("deadline-max", 30*time.Second, "per-request deadline ceiling")

		rate    = fs.Float64("rate", 50, "admission rate, requests/second")
		burst   = fs.Float64("burst", 0, "admission burst (0 = same as -rate)")
		qdepth  = fs.Int("queue", 64, "work queue depth")
		workers = fs.Int("workers", 4, "work queue workers")

		queueTarget   = fs.Duration("queue-target", 0, "CoDel sojourn target: shed while queued time stays above this for -queue-interval (0 disables)")
		queueInterval = fs.Duration("queue-interval", 0, "CoDel sustained-exceedance window (0 = 4x -queue-target)")

		brownoutPin      = fs.Int("brownout-pin", -1, "pin the degradation mode 0..2 (-1 runs the hysteresis controller)")
		brownoutDown     = fs.Duration("brownout-down", 250*time.Millisecond, "queue sojourn above this steps the ladder down")
		brownoutUp       = fs.Duration("brownout-up", 0, "queue sojourn below this steps the ladder back up (0 = -brownout-down/4)")
		brownoutDownHold = fs.Duration("brownout-down-hold", time.Second, "sustained exceedance required before a step down")
		brownoutUpHold   = fs.Duration("brownout-up-hold", 0, "sustained recovery required before a step up (0 = 4x -brownout-down-hold)")

		divergence    = fs.Float64("divergence", 0, "fault injection: fraction of schedule fingerprints answered with deterministically perturbed bytes (models a divergent replica)")
		divergenceFor = fs.Duration("divergence-for", 0, "fault injection: close the -divergence window after this much uptime (0 = never)")

		brkWindow   = fs.Int("breaker-window", 32, "breaker sliding window size")
		brkMin      = fs.Int("breaker-min", 8, "breaker minimum samples before tripping")
		brkRate     = fs.Float64("breaker-rate", 0.5, "breaker error-rate threshold")
		brkCooldown = fs.Duration("breaker-cooldown", 2*time.Second, "breaker open-state cooldown")
		brkProbes   = fs.Int("breaker-probes", 3, "breaker half-open probe quota")

		retryAttempts = fs.Int("retry-attempts", 3, "max evaluation attempts per request")
		retryBase     = fs.Duration("retry-base", 20*time.Millisecond, "retry backoff base delay")
		retryMax      = fs.Duration("retry-max", 500*time.Millisecond, "retry backoff max delay")
		budgetRatio   = fs.Float64("retry-budget-ratio", 0.2, "retry credit earned per first attempt, per client")
		budgetCap     = fs.Float64("retry-budget-cap", 10, "retry credit ceiling per client")

		soakURL      = fs.String("soak", "", "run as a soak-test client against this base URL instead of serving")
		soakDuration = fs.Duration("soak-duration", 30*time.Second, "soak client: how long to generate load")
		soakPoison   = fs.Float64("soak-poison", 0.2, "soak client: fraction of requests carrying a fault block")
		soakSeed     = fs.Uint64("soak-seed", 1, "soak client: load-pattern seed")
		soakRate     = fs.Float64("soak-rate", 100, "soak client: request pacing, requests/second (0 = unpaced)")
		soakAdaptive = fs.Float64("soak-adaptive", 0, "soak client: fraction of load requests using the (expensive) adaptive mode")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, `sosd — resilient SOS coscheduling service

Usage:
  sosd [flags]                 serve (default)
  sosd -soak URL [flags]       generate soak load against a running sosd

Exit codes:
  0  clean shutdown (drained on SIGINT/SIGTERM), or soak passed
  1  internal error, or soak found a violation
  2  usage error

Flags:
`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.Version("sosd"))
		return exitOK
	}
	logger := log.New(stderr, "sosd: ", log.LstdFlags|log.Lmsgprefix)

	if *soakURL != "" {
		return soakClient(stdout, logger, *soakURL, *soakDuration, *soakPoison, *soakSeed, *soakRate, *soakAdaptive)
	}

	var sc experiments.Scale
	switch *scale {
	case "serve":
		sc = experiments.ServeScale()
	case "quick":
		sc = experiments.QuickScale()
	case "default":
		sc = experiments.DefaultScale()
	default:
		fmt.Fprintf(stderr, "unknown -scale %q (want serve, quick or default)\n", *scale)
		return exitUsage
	}
	if *chaos < 0 || *chaos > 1 {
		fmt.Fprintf(stderr, "-chaos %v out of range [0,1]\n", *chaos)
		return exitUsage
	}
	if *warm != "" && *ckpt == "" {
		fmt.Fprintln(stderr, "-warm-from requires -checkpoint (the transferred cache needs somewhere to live)")
		return exitUsage
	}
	if *brownoutPin < -1 || *brownoutPin > brownoutModes-1 {
		fmt.Fprintf(stderr, "-brownout-pin %d out of range [-1,%d]\n", *brownoutPin, brownoutModes-1)
		return exitUsage
	}
	if *divergence < 0 || *divergence > 1 {
		fmt.Fprintf(stderr, "-divergence %v out of range [0,1]\n", *divergence)
		return exitUsage
	}

	eval := &evaluator{scale: sc}
	mode := "sosd"
	if *chaos > 0 {
		eval.chaos = &faults.Config{FailRate: *chaos}
		mode = "sosd-chaos"
		logger.Printf("chaos mode: counter reads fail with p=%v", *chaos)
	}
	if *divergence > 0 {
		logger.Printf("divergence fault injection: p=%v window=%v", *divergence, *divergenceFor)
	}

	var rec *checkpoint.Recorder
	if *ckpt != "" {
		meta := checkpoint.Meta{Exp: mode, Scale: *scale, Seed: sc.Seed}
		if _, err := os.Stat(*ckpt); err == nil {
			r, err := checkpoint.Resume(*ckpt, "", meta, *every)
			if err != nil {
				logger.Printf("checkpoint resume failed: %v", err)
				return exitInternal
			}
			rec = r
			logger.Printf("resumed %d cached responses from %s", rec.Shards(), *ckpt)
		} else {
			rec = checkpoint.NewRecorder(*ckpt, meta, *every)
		}
	}

	// Metrics are always on in the daemon: the registry is atomic counters
	// and observability never feeds back into scheduling. Tests cover the
	// nil-registry (disabled) configuration.
	reg := obs.NewRegistry()

	srv := newServer(serverConfig{
		Scale:       *scale,
		Chaos:       *chaos,
		DeadlineDef: *deadlineDef,
		DeadlineMax: *deadlineMax,
		Pprof:       *pprofOn,

		Rate:    *rate,
		Burst:   *burst,
		Queue:   *qdepth,
		Workers: *workers,

		BreakerWindow:   *brkWindow,
		BreakerMin:      *brkMin,
		BreakerRate:     *brkRate,
		BreakerCooldown: *brkCooldown,
		BreakerProbes:   *brkProbes,

		RetryAttempts:    *retryAttempts,
		RetryBase:        *retryBase,
		RetryMax:         *retryMax,
		RetryBudgetRatio: *budgetRatio,
		RetryBudgetCap:   *budgetCap,

		QueueTarget:   *queueTarget,
		QueueInterval: *queueInterval,

		BrownoutPin:      *brownoutPin,
		BrownoutDown:     *brownoutDown,
		BrownoutUp:       *brownoutUp,
		BrownoutDownHold: *brownoutDownHold,
		BrownoutUpHold:   *brownoutUpHold,

		Divergence:    *divergence,
		DivergenceFor: *divergenceFor,
	}, eval, rec, reg, logger, func(from, to resilience.State) {
		logger.Printf("breaker: %s -> %s", from, to)
	})

	// The warming gate goes up before the listener: /readyz answers 503
	// "warming cache" from the very first request, and flips to ready only
	// once a sibling's cache has been merged (or every sibling failed and
	// the node falls through to a cold start).
	var siblings []string
	for _, sib := range strings.Split(*warm, ",") {
		if sib = strings.TrimSpace(sib); sib != "" {
			siblings = append(siblings, sib)
		}
	}
	if len(siblings) > 0 {
		srv.warming.Store(true)
		go srv.warmFromSiblings(siblings, *warmTO)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Printf("listen: %v", err)
		return exitInternal
	}
	httpSrv := &http.Server{Handler: srv.handler()}

	// The address line is a contract: scripts/soak.sh parses it to find a
	// dynamically chosen port.
	logger.Printf("listening on %s", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)

	select {
	case sig := <-sigs:
		logger.Printf("%v: draining (budget %s)", sig, *drain)
		if err := srv.shutdown(*drain, httpSrv); err != nil {
			logger.Printf("shutdown: %v", err)
			return exitInternal
		}
		<-serveErr // Serve has returned ErrServerClosed by now
		st, _ := json.Marshal(srv.stats())
		logger.Printf("drained cleanly; final stats: %s", st)
		return exitOK
	case err := <-serveErr:
		if !errors.Is(err, http.ErrServerClosed) {
			logger.Printf("serve: %v", err)
			return exitInternal
		}
		return exitOK
	}
}

// soakClient hammers a running sosd for the configured duration: a mix of
// clean and poisoned (fault-carrying) requests from several client
// identities, plus a recurring clean canary request whose responses must be
// byte-identical every time. Returns exitOK when the service shed load
// gracefully (only expected statuses, every shed carrying Retry-After),
// answered at least one request, and never broke the canary's determinism.
func soakClient(stdout io.Writer, logger *log.Logger, base string, dur time.Duration, poison float64, seed uint64, rate, adaptive float64) int {
	if poison < 0 || poison > 1 {
		logger.Printf("-soak-poison %v out of range [0,1]", poison)
		return exitUsage
	}
	if rate < 0 {
		logger.Printf("-soak-rate %v must be non-negative", rate)
		return exitUsage
	}
	if adaptive < 0 || adaptive > 1 {
		logger.Printf("-soak-adaptive %v out of range [0,1]", adaptive)
		return exitUsage
	}
	// Pace the load near (but above) the server's default admission rate, so
	// the soak exercises both acceptance and shedding. Unpaced, the client
	// can outrun admission so thoroughly that nothing ever gets through.
	var pace time.Duration
	if rate > 0 {
		pace = time.Duration(float64(time.Second) / rate)
	}
	client := &http.Client{Timeout: 15 * time.Second}
	defer client.CloseIdleConnections()

	mixLabels := []string{"Jsb(4,2,2)", "Jsb(5,2,2)", "Jsb(6,3,3)"}
	r := rng.New(seed)
	deadline := time.Now().Add(dur)

	// The client is open-loop: requests fire at the configured pace whether
	// or not earlier ones have answered (bounded in-flight so a stalled
	// server cannot leak unbounded goroutines). A closed-loop client could
	// never offer more than 1x capacity — the whole point of the overload
	// soak is sustained offered load past what the server absorbs.
	var (
		mu  sync.Mutex // guards every counter below, canary, and detBroken
		wg  sync.WaitGroup
		sem = make(chan struct{}, 32)

		sent, ok2xx, shed429, unavail503, timeout504, bad4xx, other int
		shedBare                                                    int // sheds missing Retry-After (contract violations)
		canary                                                      []byte
		detBroken                                                   bool
	)
	statuses := map[int]*int{
		http.StatusOK:                 &ok2xx,
		http.StatusTooManyRequests:    &shed429,
		http.StatusServiceUnavailable: &unavail503,
		http.StatusGatewayTimeout:     &timeout504,
	}
	// Every shed — limiter 429, breaker/queue 503 — must tell the client
	// when to come back. 504 is a deadline verdict, not a shed.
	checkShed := func(status int, hdr http.Header) {
		if (status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable) &&
			hdr.Get("Retry-After") == "" {
			shedBare++
			logger.Printf("SHED CONTRACT VIOLATION: %d without Retry-After", status)
		}
	}

	post := func(body []byte, clientID string) (int, http.Header, []byte, error) {
		req, err := http.NewRequest(http.MethodPost, base+"/v1/schedule", bytes.NewReader(body))
		if err != nil {
			return 0, nil, nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Client-ID", clientID)
		resp, err := client.Do(req)
		if err != nil {
			return 0, nil, nil, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return resp.StatusCode, resp.Header, data, err
	}

	// The canary seed is chosen so the evaluation survives server-side chaos
	// at the default -chaos 0.2 on its first attempt: fault draws are a pure
	// function of (seed, attempt), so a seed that fails every retry would
	// deterministically fail forever, never exercising the byte-identity
	// check. Seed 41's draw pattern is clean at serve scale.
	canaryBody, _ := json.Marshal(ScheduleRequest{
		Mix: "Jsb(4,2,2)", Seed: 41, Samples: 4, Mode: "rank", DeadlineMS: 10_000,
	})

	// fire posts one request asynchronously and classifies the answer. The
	// request bodies are drawn sequentially in the loop below, so the load
	// script stays a deterministic function of -soak-seed regardless of how
	// responses interleave.
	fire := func(isCanary bool, body []byte, clientID string) {
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			status, hdr, respBody, err := post(body, clientID)
			mu.Lock()
			defer mu.Unlock()
			sent++
			if err != nil {
				logger.Printf("transport error: %v", err)
				other++
				return
			}
			checkShed(status, hdr)
			switch {
			case isCanary && status == http.StatusOK:
				ok2xx++
				if canary == nil {
					canary = respBody
				} else if !bytes.Equal(canary, respBody) {
					logger.Printf("DETERMINISM VIOLATION: canary response changed\nfirst: %s\nnow:   %s", canary, respBody)
					detBroken = true
				}
			default:
				if c, okc := statuses[status]; okc {
					*c++
				} else if status == http.StatusBadRequest && !isCanary {
					bad4xx++
				} else {
					logger.Printf("unexpected status %d: %s", status, respBody)
					other++
				}
			}
		}()
	}

	for i := 0; time.Now().Before(deadline); i++ {
		if pace > 0 && i > 0 {
			time.Sleep(pace)
		}
		// Every 8th request is the canary; the rest are randomized load.
		if i%8 == 0 {
			fire(true, canaryBody, "canary")
			continue
		}
		sr := ScheduleRequest{
			Mix:        mixLabels[int(r.Uint64()%uint64(len(mixLabels)))],
			Seed:       r.Uint64() % 1000,
			Samples:    int(2 + r.Uint64()%4),
			Mode:       "rank",
			DeadlineMS: int64(200 + r.Uint64()%2000),
		}
		if r.Float64() < adaptive {
			// Expensive full-run requests: the overload soak's way of
			// offering more work than the evaluator can absorb.
			sr.Mode = "adaptive"
			sr.DeadlineMS = 30_000
		}
		if r.Float64() < poison {
			sr.Fault = &faults.Config{FailRate: 0.2}
		}
		body, _ := json.Marshal(sr)
		fire(false, body, fmt.Sprintf("load-%d", i%4))
	}
	wg.Wait()
	if detBroken {
		return exitInternal
	}

	logger.Printf("soak: sent=%d 200=%d 429=%d 503=%d 504=%d 400=%d other=%d",
		sent, ok2xx, shed429, unavail503, timeout504, bad4xx, other)
	if canary != nil {
		fmt.Fprintf(stdout, "canary sha256=%x\n", sha256.Sum256(canary))
	}
	switch {
	case other > 0:
		logger.Printf("soak FAILED: %d unexpected responses", other)
		return exitInternal
	case shedBare > 0:
		logger.Printf("soak FAILED: %d sheds without Retry-After", shedBare)
		return exitInternal
	case ok2xx == 0:
		logger.Printf("soak FAILED: no request ever succeeded")
		return exitInternal
	case canary == nil:
		logger.Printf("soak FAILED: canary never succeeded")
		return exitInternal
	}
	fmt.Fprintln(stdout, "soak passed")
	return exitOK
}
