package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"symbios/internal/checkpoint"
	"symbios/internal/experiments"
	"symbios/internal/faults"
	"symbios/internal/leakcheck"
	"symbios/internal/obs"
	"symbios/internal/resilience"
)

func TestMain(m *testing.M) { os.Exit(leakcheck.MainRun(m.Run)) }

// testScale is a tiny budget so a request answers in tens of milliseconds.
func testScale() experiments.Scale {
	sc := experiments.ServeScale()
	sc.Slice = 5_000
	sc.SymbiosCycles = 100_000
	sc.WarmupCycles = 20_000
	sc.CalibWarmup = 20_000
	sc.CalibMeasure = 10_000
	return sc
}

type testServerOpts struct {
	chaos   *faults.Config
	cfg     func(*serverConfig)
	rec     *checkpoint.Recorder
	reg     *obs.Registry
	onTrans func(from, to resilience.State)
}

// newTestServer stands up a full pipeline on an httptest listener.
func newTestServer(t *testing.T, opts testServerOpts) (*server, *httptest.Server) {
	t.Helper()
	cfg := serverConfig{
		Scale:       "serve",
		DeadlineDef: 10 * time.Second,
		DeadlineMax: 30 * time.Second,
		Rate:        10_000, // effectively unlimited unless a test lowers it
		Queue:       16,
		Workers:     4,

		BreakerWindow:   8,
		BreakerMin:      4,
		BreakerRate:     0.5,
		BreakerCooldown: 200 * time.Millisecond,
		BreakerProbes:   2,

		RetryAttempts:    3,
		RetryBase:        time.Millisecond,
		RetryMax:         5 * time.Millisecond,
		RetryBudgetRatio: 0.5,
		RetryBudgetCap:   10,
	}
	if opts.cfg != nil {
		opts.cfg(&cfg)
	}
	eval := &evaluator{scale: testScale(), chaos: opts.chaos}
	logger := log.New(io.Discard, "", 0)
	srv := newServer(cfg, eval, opts.rec, opts.reg, logger, opts.onTrans)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(func() {
		ts.Close()
		if err := srv.shutdown(5*time.Second, nil); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv, ts
}

// tryPostSchedule sends a request; safe to call from helper goroutines.
func tryPostSchedule(ts *httptest.Server, body string, client string) (int, []byte, error) {
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/schedule", bytes.NewReader([]byte(body)))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("X-Client-ID", client)
	resp, err := ts.Client().Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return resp.StatusCode, data, err
}

// postSchedule sends a request and returns status + body.
func postSchedule(t *testing.T, ts *httptest.Server, body string, client string) (int, []byte) {
	t.Helper()
	status, data, err := tryPostSchedule(ts, body, client)
	if err != nil {
		t.Fatalf("POST /v1/schedule: %v", err)
	}
	return status, data
}

// TestScheduleRankHappyPath checks a clean rank request returns the full
// predictor-ranked candidate list.
func TestScheduleRankHappyPath(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, testServerOpts{})
	status, body := postSchedule(t, ts, `{"mix":"Jsb(4,2,2)","seed":7,"samples":4}`, "t")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp ScheduleResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	// Jsb(4,2,2) has only 3 distinct schedules, so a 4-sample request
	// enumerates all of them.
	if resp.Best == "" || len(resp.Ranking) != 3 {
		t.Fatalf("response %+v: want best and 3 ranked schedules", resp)
	}
	if resp.Ranking[0].Schedule != resp.Best {
		t.Fatalf("best %q is not ranking head %q", resp.Best, resp.Ranking[0].Schedule)
	}
	if resp.Predictor != "Score" || resp.Mode != "rank" {
		t.Fatalf("defaults not applied: %+v", resp)
	}
}

// TestScheduleAdaptiveMode checks the adaptive mode reports a speedup.
func TestScheduleAdaptiveMode(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, testServerOpts{})
	status, body := postSchedule(t, ts, `{"mix":"Jsb(4,2,2)","seed":7,"samples":3,"mode":"adaptive"}`, "t")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp ScheduleResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.WeightedSpeedup <= 0 || resp.Cycles == 0 {
		t.Fatalf("adaptive response %+v: want positive WS and cycles", resp)
	}
}

// TestScheduleDeterministicResponses checks identical requests return
// byte-identical bodies, served from the response cache after the first.
func TestScheduleDeterministicResponses(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	rec := checkpoint.NewRecorder(filepath.Join(dir, "cache.json"), checkpoint.Meta{Exp: "sosd", Scale: "serve", Seed: 1}, 1)
	_, ts := newTestServer(t, testServerOpts{rec: rec})
	reqBody := `{"mix":"Jsb(4,2,2)","seed":11,"samples":4}`
	status1, body1 := postSchedule(t, ts, reqBody, "t")
	status2, body2 := postSchedule(t, ts, reqBody, "t")
	if status1 != http.StatusOK || status2 != http.StatusOK {
		t.Fatalf("statuses %d, %d", status1, status2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("responses differ:\n%s\n%s", body1, body2)
	}
	if rec.Hits() == 0 {
		t.Fatal("second request did not hit the cache")
	}
	// A different deadline must not change the fingerprint.
	_, body3 := postSchedule(t, ts, `{"mix":"Jsb(4,2,2)","seed":11,"samples":4,"deadline_ms":9999}`, "t")
	if !bytes.Equal(body1, body3) {
		t.Fatal("deadline change altered the response bytes")
	}
}

// TestScheduleChaosCleanRequestsMatch checks a request that suffers no
// faults returns the same bytes on a chaos server as on a clean one —
// injected failures are retried, never absorbed into results.
func TestScheduleChaosCleanRequestsMatch(t *testing.T) {
	leakcheck.Check(t)
	_, clean := newTestServer(t, testServerOpts{})
	_, chaotic := newTestServer(t, testServerOpts{chaos: &faults.Config{FailRate: 0.05}})
	reqBody := `{"mix":"Jsb(4,2,2)","seed":3,"samples":4}`
	s1, b1 := postSchedule(t, clean, reqBody, "t")
	if s1 != http.StatusOK {
		t.Fatalf("clean server status %d: %s", s1, b1)
	}
	// The chaos server may need the retry path; accept a transient 503 and
	// retake. With FailRate 0.05 and 3 attempts this converges quickly.
	for i := 0; i < 10; i++ {
		s2, b2 := postSchedule(t, chaotic, reqBody, "t")
		if s2 == http.StatusOK {
			if !bytes.Equal(b1, b2) {
				t.Fatalf("chaos response differs from clean response:\n%s\n%s", b1, b2)
			}
			return
		}
		if s2 != http.StatusServiceUnavailable {
			t.Fatalf("chaos server status %d: %s", s2, b2)
		}
	}
	t.Fatal("chaos server never produced a clean result in 10 tries")
}

// TestScheduleRejectsBadRequests checks the decode layer's 400 paths.
func TestScheduleRejectsBadRequests(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, testServerOpts{})
	cases := []string{
		``,
		`{`,
		`{"mix":"nope"}`,
		`{"mix":"Jsb(4,2,2)","predictor":"Wrong"}`,
		`{"mix":"Jsb(4,2,2)","samples":999}`,
		`{"mix":"Jsb(4,2,2)","mode":"dance"}`,
		`{"mix":"Jsb(4,2,2)","unknown_field":1}`,
		`{"mix":"Jsb(4,2,2)"} trailing`,
		`{"mix":"Jsb(4,2,2)","fault":{"fail_rate":2}}`,
		`{"mix":"Jsb(4,2,2)","fault":{"fail_rate":0.1}}`, // chaos not enabled
	}
	for _, body := range cases {
		if status, resp := postSchedule(t, ts, body, "t"); status != http.StatusBadRequest {
			t.Errorf("body %q: status %d (%s), want 400", body, status, resp)
		}
	}
}

// TestScheduleShedsWhenSaturated checks queue saturation returns 503 with
// Retry-After rather than queueing unboundedly, and MaxDepth stays bounded.
func TestScheduleShedsWhenSaturated(t *testing.T) {
	leakcheck.Check(t)
	srv, ts := newTestServer(t, testServerOpts{cfg: func(c *serverConfig) {
		c.Queue = 1
		c.Workers = 1
	}})
	done := make(chan int, 32)
	for i := 0; i < 16; i++ {
		go func() {
			status, _, _ := tryPostSchedule(ts, `{"mix":"Jsb(6,3,3)","seed":5,"samples":8,"mode":"adaptive"}`, "t")
			done <- status
		}()
	}
	var shed, ok int
	for i := 0; i < 16; i++ {
		switch <-done {
		case http.StatusServiceUnavailable:
			shed++
		case http.StatusOK:
			ok++
		}
	}
	if shed == 0 {
		t.Fatal("16 concurrent requests against a depth-1 queue shed nothing")
	}
	if ok == 0 {
		t.Fatal("no request succeeded under saturation")
	}
	if st := srv.queue.Stats(); st.MaxDepth > st.Cap {
		t.Fatalf("queue depth %d exceeded cap %d", st.MaxDepth, st.Cap)
	}
}

// TestScheduleAdmissionControl checks the rate limiter sheds with 429.
func TestScheduleAdmissionControl(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, testServerOpts{cfg: func(c *serverConfig) {
		c.Rate = 0.001
		c.Burst = 2
	}})
	var shed int
	for i := 0; i < 5; i++ {
		status, _ := postSchedule(t, ts, `{"mix":"Jsb(4,2,2)","seed":1,"samples":2}`, "t")
		if status == http.StatusTooManyRequests {
			shed++
		}
	}
	if shed != 3 {
		t.Fatalf("shed %d of 5 at burst 2, want 3", shed)
	}
}

// TestScheduleDeadline checks a request with a tiny deadline gets 504
// without waiting materially past its budget.
func TestScheduleDeadline(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, testServerOpts{})
	start := time.Now()
	status, body := postSchedule(t, ts, `{"mix":"Jsb(12,6,6)","seed":1,"samples":16,"mode":"adaptive","deadline_ms":1}`, "t")
	elapsed := time.Since(start)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", status, body)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("1ms-deadline request took %v", elapsed)
	}
}

// TestBreakerOpensAndRecovers drives the breaker through a full
// open -> half-open -> closed cycle with guaranteed-failing requests.
func TestBreakerOpensAndRecovers(t *testing.T) {
	leakcheck.Check(t)
	transitions := make(chan string, 16)
	srv, ts := newTestServer(t, testServerOpts{
		chaos: &faults.Config{FailRate: 1}, // every counter read fails
		cfg: func(c *serverConfig) {
			c.BreakerMin = 2
			c.BreakerWindow = 4
			c.BreakerCooldown = 100 * time.Millisecond
			c.BreakerProbes = 1
			c.RetryAttempts = 1
		},
		onTrans: func(from, to resilience.State) {
			transitions <- from.String() + "->" + to.String()
		},
	})
	// Guaranteed failures: FailRate 1 and no retries.
	req := `{"mix":"Jsb(4,2,2)","seed":1,"samples":2}`
	for i := 0; i < 4; i++ {
		if status, body := postSchedule(t, ts, req, "t"); status != http.StatusServiceUnavailable {
			t.Fatalf("request %d: status %d (%s), want 503", i, status, body)
		}
	}
	waitTransition(t, transitions, "closed->open")
	if srv.breaker.State() != resilience.Open {
		t.Fatalf("breaker %v after failures, want open", srv.breaker.State())
	}
	// While open: fast-fail without touching the backend.
	if status, _ := postSchedule(t, ts, req, "t"); status != http.StatusServiceUnavailable {
		t.Fatal("open breaker did not fast-fail")
	}
	// Heal the backend, wait out the cooldown, and probe.
	srv.eval.chaos = nil
	time.Sleep(150 * time.Millisecond)
	if status, body := postSchedule(t, ts, req, "t"); status != http.StatusOK {
		t.Fatalf("probe after cooldown: status %d (%s), want 200", status, body)
	}
	waitTransition(t, transitions, "open->half-open")
	waitTransition(t, transitions, "half-open->closed")
	if srv.breaker.State() != resilience.Closed {
		t.Fatalf("breaker %v after successful probe, want closed", srv.breaker.State())
	}
}

// waitTransition expects the named transition on the channel.
func waitTransition(t *testing.T, ch chan string, want string) {
	t.Helper()
	select {
	case got := <-ch:
		if got != want {
			t.Fatalf("transition %q, want %q", got, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("transition %q never happened", want)
	}
}

// TestRetryBudgetExhaustion checks a client that fails hard enough runs out
// of retry credit: later failures return without burning retries.
func TestRetryBudgetExhaustion(t *testing.T) {
	leakcheck.Check(t)
	srv, ts := newTestServer(t, testServerOpts{
		chaos: &faults.Config{FailRate: 1},
		cfg: func(c *serverConfig) {
			c.RetryAttempts = 3
			c.RetryBudgetRatio = 0.01
			c.RetryBudgetCap = 1
			c.BreakerMin = 1000 // keep the breaker out of this test
		},
	})
	for i := 0; i < 6; i++ {
		if status, _ := postSchedule(t, ts, `{"mix":"Jsb(4,2,2)","seed":1,"samples":2}`, "hammer"); status != http.StatusServiceUnavailable {
			t.Fatalf("request %d: status %d, want 503", i, status)
		}
	}
	if got := srv.budgets.Exhausted(); got == 0 {
		t.Fatal("retry budget never exhausted under sustained failure")
	}
}

// TestDrainUnderLoad checks shutdown under in-flight load completes, the
// in-flight request finishes, and post-drain requests are refused.
func TestDrainUnderLoad(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.json")
	rec := checkpoint.NewRecorder(path, checkpoint.Meta{Exp: "sosd", Scale: "serve", Seed: 1}, 1)
	srv, ts := newTestServer(t, testServerOpts{rec: rec})
	results := make(chan int, 4)
	for i := 0; i < 4; i++ {
		go func() {
			status, _, _ := tryPostSchedule(ts, `{"mix":"Jsb(4,2,2)","seed":77,"samples":4,"mode":"adaptive"}`, "t")
			results <- status
		}()
	}
	// Let the requests reach the queue, then drain.
	time.Sleep(20 * time.Millisecond)
	if err := srv.shutdown(10*time.Second, nil); err != nil {
		t.Fatalf("shutdown under load: %v", err)
	}
	var ok int
	for i := 0; i < 4; i++ {
		if <-results == http.StatusOK {
			ok++
		}
	}
	if ok == 0 {
		t.Fatal("no in-flight request survived the drain")
	}
	// New work is refused while drained.
	if status, _ := postSchedule(t, ts, `{"mix":"Jsb(4,2,2)","seed":1}`, "t"); status != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request status %d, want 503", status)
	}
	// The checkpoint was flushed and is loadable.
	snap, err := checkpoint.Load(path)
	if err != nil {
		t.Fatalf("loading flushed checkpoint: %v", err)
	}
	if len(snap.Shards) == 0 {
		t.Fatal("drained checkpoint holds no responses")
	}
}

// TestHealthAndReadiness checks the probe endpoints.
func TestHealthAndReadiness(t *testing.T) {
	leakcheck.Check(t)
	srv, ts := newTestServer(t, testServerOpts{})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
	}
	srv.draining.Store(true)
	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining: status %d, want 503", resp.StatusCode)
	}
	srv.draining.Store(false)
}

// TestStatz checks the stats endpoint decodes.
func TestStatz(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, testServerOpts{})
	postSchedule(t, ts, `{"mix":"Jsb(4,2,2)","seed":1,"samples":2}`, "t")
	resp, err := ts.Client().Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serverStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding /statz: %v", err)
	}
	if st.Limiter.Admitted == 0 {
		t.Fatalf("stats %+v: want at least one admitted request", st)
	}
}

// TestVersionFlag checks -version prints and exits 0.
func TestVersionFlag(t *testing.T) {
	leakcheck.Check(t)
	var out, errOut bytes.Buffer
	if code := realMain([]string{"-version"}, &out, &errOut); code != exitOK {
		t.Fatalf("exit %d, want 0 (stderr: %s)", code, errOut.String())
	}
	if !bytes.Contains(out.Bytes(), []byte("sosd")) {
		t.Fatalf("version output %q does not name the binary", out.String())
	}
}

// TestUsageErrors checks bad flags exit 2.
func TestUsageErrors(t *testing.T) {
	leakcheck.Check(t)
	for _, args := range [][]string{
		{"-scale", "bogus"},
		{"-chaos", "7"},
		{"-nonsense"},
	} {
		var out, errOut bytes.Buffer
		if code := realMain(args, &out, &errOut); code != exitUsage {
			t.Fatalf("args %v: exit %d, want %d", args, code, exitUsage)
		}
	}
}

// TestHardStopCancelsRequests checks the shutdown escalation path: work
// that outlives the drain budget is cancelled via the base context.
func TestHardStopCancelsRequests(t *testing.T) {
	leakcheck.Check(t)
	srv, ts := newTestServer(t, testServerOpts{cfg: func(c *serverConfig) {
		c.DeadlineDef = time.Hour // only the hard-stop can end this request
		c.DeadlineMax = time.Hour
	}})
	result := make(chan int, 1)
	go func() {
		// A big adaptive run that would take far longer than the drain budget.
		status, _, _ := tryPostSchedule(ts, `{"mix":"Jsb(12,6,6)","seed":1,"samples":32,"mode":"adaptive"}`, "t")
		result <- status
	}()
	waitForCond(t, func() bool { return srv.queue.Stats().Submitted >= 1 })
	start := time.Now()
	if err := srv.shutdown(50*time.Millisecond, nil); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("hard-stop shutdown took %v", elapsed)
	}
	select {
	case status := <-result:
		if status != http.StatusServiceUnavailable && status != http.StatusGatewayTimeout {
			t.Fatalf("hard-stopped request status %d", status)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("hard-stopped request never returned")
	}
	if ctxErr := srv.base.Err(); !errors.Is(ctxErr, context.Canceled) {
		t.Fatalf("base context err %v, want Canceled", ctxErr)
	}
}

// waitForCond polls until cond holds.
func waitForCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
