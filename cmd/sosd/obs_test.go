package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"symbios/internal/faults"
	"symbios/internal/leakcheck"
	"symbios/internal/obs"
)

// get fetches a path from the test server and returns status + body.
func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return resp.StatusCode, body
}

// TestObsOnOffByteIdentical is the service side of the no-feedback
// contract: /v1/schedule responses must be byte-identical with metrics
// enabled versus disabled, in both modes, at worker counts 1 and 8.
// Observability that changed even one response byte would silently skew
// every downstream consumer of the scheduler.
func TestObsOnOffByteIdentical(t *testing.T) {
	leakcheck.Check(t)
	requests := []string{
		`{"mix":"Jsb(4,2,2)","seed":7,"samples":4}`,
		`{"mix":"Jsb(4,2,2)","seed":7,"samples":3,"mode":"adaptive"}`,
	}
	for _, workers := range []int{1, 8} {
		setWorkers := func(cfg *serverConfig) { cfg.Workers = workers }
		_, plain := newTestServer(t, testServerOpts{cfg: setWorkers})
		_, metered := newTestServer(t, testServerOpts{cfg: setWorkers, reg: obs.NewRegistry()})
		for _, req := range requests {
			sp, bp := postSchedule(t, plain, req, "t")
			sm, bm := postSchedule(t, metered, req, "t")
			if sp != http.StatusOK || sm != http.StatusOK {
				t.Fatalf("workers=%d req %s: statuses %d (plain) vs %d (metered)", workers, req, sp, sm)
			}
			if !bytes.Equal(bp, bm) {
				t.Errorf("workers=%d req %s: responses differ with metrics on:\n%s\nvs\n%s", workers, req, bp, bm)
			}
		}
	}
}

// TestMetricsEndpoint scrapes /metrics after real traffic and checks the
// exposition is valid Prometheus text covering every pipeline stage, the
// request/simulator families and the SOS phase spans.
func TestMetricsEndpoint(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, testServerOpts{reg: obs.NewRegistry()})
	if s, b := postSchedule(t, ts, `{"mix":"Jsb(4,2,2)","seed":7,"samples":4}`, "t"); s != http.StatusOK {
		t.Fatalf("rank request: status %d: %s", s, b)
	}
	// Adaptive mode drives the SOS loop, whose phase spans surface as
	// obs_span_seconds series.
	if s, b := postSchedule(t, ts, `{"mix":"Jsb(4,2,2)","seed":7,"samples":3,"mode":"adaptive"}`, "t"); s != http.StatusOK {
		t.Fatalf("adaptive request: status %d: %s", s, b)
	}

	status, body := get(t, ts, "/metrics")
	if status != http.StatusOK {
		t.Fatalf("GET /metrics: status %d: %s", status, body)
	}
	families, err := obs.ParseText(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, body)
	}
	for fam, kind := range map[string]string{
		"sosd_stage_seconds":        "histogram",
		"sosd_http_request_seconds": "histogram",
		"sosd_http_requests_total":  "counter",
		"sosd_limiter_admitted":     "gauge",
		"sosd_breaker_state":        "gauge",
		"sosd_queue_depth":          "gauge",
		"sim_cycles_total":          "counter",
		"sim_conflict_cycles_total": "counter",
		"obs_span_seconds":          "histogram",
	} {
		if got := families[fam]; got != kind {
			t.Errorf("family %s: type %q, want %q", fam, got, kind)
		}
	}
	text := string(body)
	for _, stage := range []string{"limiter", "decode", "cache", "breaker", "queue", "retry"} {
		if !strings.Contains(text, fmt.Sprintf(`sosd_stage_seconds_count{stage=%q}`, stage)) {
			t.Errorf("exposition missing pipeline stage %q", stage)
		}
	}
	for _, span := range []string{"sos/sample", "sos/optimize", "sos/symbios"} {
		if !strings.Contains(text, fmt.Sprintf(`obs_span_seconds_count{span=%q}`, span)) {
			t.Errorf("exposition missing SOS phase span %q", span)
		}
	}
}

// TestMetricsDisabled404 checks a server without a registry answers 404
// on /metrics instead of an empty exposition a scraper would mistake for
// a healthy-but-idle target.
func TestMetricsDisabled404(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, testServerOpts{})
	if status, body := get(t, ts, "/metrics"); status != http.StatusNotFound {
		t.Fatalf("GET /metrics without registry: status %d: %s", status, body)
	}
}

// TestMetricsConcurrentScrape hammers a chaos-mode server with schedule
// traffic while concurrently scraping /metrics and /statz, under the
// leak checker: scrapes must stay valid mid-flight and the extra
// goroutines must all drain on shutdown.
func TestMetricsConcurrentScrape(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, testServerOpts{
		reg:   obs.NewRegistry(),
		chaos: &faults.Config{FailRate: 0.05},
	})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 3; j++ {
				body := fmt.Sprintf(`{"mix":"Jsb(4,2,2)","seed":%d,"samples":3}`, i*10+j)
				if _, _, err := tryPostSchedule(ts, body, fmt.Sprintf("c%d", i)); err != nil {
					errs <- fmt.Errorf("post: %w", err)
					return
				}
			}
		}(i)
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				resp, err := ts.Client().Get(ts.URL + "/metrics")
				if err != nil {
					errs <- fmt.Errorf("scrape: %w", err)
					return
				}
				_, perr := obs.ParseText(resp.Body)
				resp.Body.Close()
				if perr != nil {
					errs <- fmt.Errorf("mid-flight exposition invalid: %w", perr)
					return
				}
				if resp, err = ts.Client().Get(ts.URL + "/statz"); err != nil {
					errs <- fmt.Errorf("statz: %w", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
