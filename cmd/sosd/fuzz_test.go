package main

import (
	"strings"
	"testing"
)

// FuzzDecodeScheduleRequest drives the request decoder with hostile bodies.
// The invariants: never panic, never accept an invalid request (the
// returned request, when err is nil, is fully normalized and in range), and
// reject oversized input outright.
func FuzzDecodeScheduleRequest(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`{"mix":"Jsb(4,2,2)"}`,
		`{"mix":"Jsb(4,2,2)","seed":7,"samples":4,"mode":"adaptive"}`,
		`{"mix":"Jsb(6,3,3)","predictor":"IPC","deadline_ms":100}`,
		`{"mix":"Jsb(4,2,2)","fault":{"fail_rate":0.2,"noise_sigma":0.1}}`,
		`{"mix":"Jsb(4,2,2)","fault":{"fail_rate":1e999}}`,
		`{"mix":"Jsb(4,2,2)","samples":-1}`,
		`{"mix":"Jsb(4,2,2)","deadline_ms":-5}`,
		`{"mix":"Jsb(4,2,2)"} {"mix":"Jsb(4,2,2)"}`,
		`[1,2,3]`,
		`"just a string"`,
		`{"mix":{"nested":"object"}}`,
		strings.Repeat("[", 10_000),
		`{"mix":"` + strings.Repeat("A", 20_000) + `"}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeScheduleRequest(data)
		if err != nil {
			return
		}
		if len(data) > MaxRequestBytes {
			t.Fatalf("accepted %d-byte body over the %d cap", len(data), MaxRequestBytes)
		}
		if req.Samples < 1 || req.Samples > maxSamples {
			t.Fatalf("accepted samples %d out of range", req.Samples)
		}
		if req.Mode != "rank" && req.Mode != "adaptive" {
			t.Fatalf("accepted mode %q", req.Mode)
		}
		if _, ok := predictorNames[req.Predictor]; !ok {
			t.Fatalf("accepted predictor %q", req.Predictor)
		}
		if req.DeadlineMS < 0 || req.DeadlineMS > maxDeadlineMS {
			t.Fatalf("accepted deadline_ms %d out of range", req.DeadlineMS)
		}
		if req.Fault != nil {
			if err := validateFault(*req.Fault); err != nil {
				t.Fatalf("accepted invalid fault block: %v", err)
			}
			if !req.Fault.Active() {
				t.Fatal("inactive fault block not normalized to nil")
			}
		}
		// The fingerprint must be total on every accepted request.
		if req.Fingerprint() == "" {
			t.Fatal("empty fingerprint for accepted request")
		}
	})
}

// FuzzDecodeBatchRequest drives the batch envelope decoder with hostile
// bodies: oversized arrays, duplicate and NaN-bearing items, truncated JSON.
// The envelope decoder must never panic and never accept an out-of-bounds
// batch; item-level garbage is deliberately accepted here (it becomes a
// per-item 400 downstream), but each accepted raw item must survive the
// singleton decoder without panicking too.
func FuzzDecodeBatchRequest(f *testing.F) {
	item := `{"mix":"Jsb(4,2,2)","seed":7,"samples":4}`
	many := item
	for i := 0; i < 70; i++ {
		many += "," + item
	}
	seeds := []string{
		``,
		`{}`,
		`{"requests":[]}`,
		`{"requests":[` + item + `]}`,
		`{"requests":[` + item + `,` + item + `]}`, // duplicates
		`{"requests":[` + many + `]}`,              // over the item bound
		`{"requests":[{"mix":"Jsb(4,2,2)","fault":{"fail_rate":1e999}}]}`,
		`{"requests":[{"mix":"Jsb(4,2,2)","fault":{"noise_sigma":NaN}}]}`,
		`{"requests":[` + item + `]} trailing`,
		`{"requests":[` + item + `],"extra":true}`,
		`{"requests":"not an array"}`,
		`{"requests":[1,2,3]}`,
		strings.Repeat(`{"requests":[`, 5_000),
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		items, err := DecodeBatchRequest(data)
		if err != nil {
			return
		}
		if len(data) > MaxBatchRequestBytes {
			t.Fatalf("accepted %d-byte batch over the %d cap", len(data), MaxBatchRequestBytes)
		}
		if len(items) < 1 || len(items) > MaxBatchItems {
			t.Fatalf("accepted %d items outside [1,%d]", len(items), MaxBatchItems)
		}
		for _, raw := range items {
			// Item validation is the singleton decoder's job; it must hold
			// its own no-panic guarantee on whatever the envelope let through.
			DecodeScheduleRequest(raw)
		}
	})
}
