package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"symbios/internal/checkpoint"
	"symbios/internal/core"
	"symbios/internal/integrity"
	"symbios/internal/obs"
	"symbios/internal/resilience"
	"symbios/internal/rng"
	"symbios/internal/workload"
)

// serverConfig collects every policy knob the flags set.
type serverConfig struct {
	Scale       string
	Chaos       float64 // -chaos: FailRate injected into every request
	DeadlineDef time.Duration
	DeadlineMax time.Duration
	Pprof       bool // -pprof: mount net/http/pprof under /debug/pprof/

	Rate    float64
	Burst   float64
	Queue   int
	Workers int

	BreakerWindow   int
	BreakerMin      int
	BreakerRate     float64
	BreakerCooldown time.Duration
	BreakerProbes   int

	RetryAttempts    int
	RetryBase        time.Duration
	RetryMax         time.Duration
	RetryBudgetRatio float64
	RetryBudgetCap   float64

	// QueueTarget, when positive, turns on CoDel-style sojourn shedding in
	// the work queue (see resilience.QueueConfig.SojournTarget).
	QueueTarget   time.Duration
	QueueInterval time.Duration

	// BrownoutPin selects the degradation ladder behavior: -1 runs the
	// hysteresis controller; 0..2 pins the mode (0, the zero value, is full
	// service — the pre-brownout behavior tests rely on).
	BrownoutPin      int
	BrownoutDown     time.Duration
	BrownoutUp       time.Duration
	BrownoutDownHold time.Duration
	BrownoutUpHold   time.Duration

	// Divergence, when positive, makes this replica answer a deterministic
	// fraction of schedule fingerprints with a perturbed body — a valid JSON
	// answer carrying a correct digest over *wrong* bytes. It models a
	// replica that is honestly wrong (bad warm cache, skewed deploy) so the
	// fleet tier's quarantine machinery has something real to convict. The
	// response cache always records the honest bytes, so cache exports never
	// spread the divergence to siblings.
	Divergence float64
	// DivergenceFor bounds the fault window: after this much uptime the
	// replica answers honestly again (0 means diverge forever), letting soaks
	// exercise quarantine *and* readmission in one run.
	DivergenceFor time.Duration
}

// brownoutModes is the ladder length: mode 0 full adaptive verdicts, mode 1
// predictor-rank-only, mode 2 cached or round-robin answers only.
const brownoutModes = 3

// server is the resilient scheduling service: every /v1/schedule request
// passes drain-gate -> admission limiter -> decode -> response cache ->
// circuit breaker -> deadline budget -> bounded queue -> budgeted retry ->
// evaluator, in that order.
type server struct {
	cfg  serverConfig
	eval *evaluator

	limiter *resilience.Limiter
	breaker *resilience.Breaker
	queue   *resilience.Queue
	budgets *resilience.BudgetPool
	rec     *checkpoint.Recorder

	// brownout walks the degradation ladder on measured queue sojourn; nil
	// when the mode is pinned (cfg.BrownoutPin >= 0).
	brownout *resilience.Brownout

	// base is the parent of every request context; hardStop cancels it so
	// in-flight machines abort at the next timeslice boundary.
	base     context.Context
	hardStop context.CancelFunc

	draining atomic.Bool
	// warming holds /readyz at 503 while the response cache is being
	// transferred from a fleet sibling on boot, so a front tier never routes
	// to a node that would answer cold what a sibling has already computed.
	warming atomic.Bool
	// started anchors the divergence fault window (cfg.DivergenceFor).
	started time.Time
	logger  *log.Logger

	// obs is never nil; with a nil registry every handle inside is a
	// no-op. Observability never feeds back into scheduling decisions.
	obs *serverObs
}

// newServer wires the pipeline. rec may be nil (no response cache); reg
// may be nil (metrics disabled, /metrics answers 404).
func newServer(cfg serverConfig, eval *evaluator, rec *checkpoint.Recorder, reg *obs.Registry, logger *log.Logger, onTransition func(from, to resilience.State)) *server {
	base, cancel := context.WithCancel(context.Background())
	srv := &server{
		cfg:  cfg,
		eval: eval,
		limiter: resilience.NewLimiter(resilience.LimiterConfig{
			Rate:  cfg.Rate,
			Burst: cfg.Burst,
		}),
		breaker: resilience.NewBreaker(resilience.BreakerConfig{
			Window:       cfg.BreakerWindow,
			MinSamples:   cfg.BreakerMin,
			ErrorRate:    cfg.BreakerRate,
			Cooldown:     cfg.BreakerCooldown,
			Probes:       cfg.BreakerProbes,
			OnTransition: onTransition,
		}),
		budgets:  resilience.NewBudgetPool(resilience.BudgetConfig{Ratio: cfg.RetryBudgetRatio, Cap: cfg.RetryBudgetCap}),
		rec:      rec,
		base:     base,
		hardStop: cancel,
		started:  time.Now(),
		logger:   logger,
		obs:      newServerObs(reg),
	}
	if cfg.BrownoutPin < 0 {
		srv.brownout = resilience.NewBrownout(resilience.BrownoutConfig{
			Modes:         brownoutModes,
			DownThreshold: cfg.BrownoutDown,
			UpThreshold:   cfg.BrownoutUp,
			DownHold:      cfg.BrownoutDownHold,
			UpHold:        cfg.BrownoutUpHold,
			OnTransition: func(from, to int) {
				srv.obs.brownoutTransition(from, to)
				logger.Printf("brownout: mode %d -> %d", from, to)
			},
		})
	}
	srv.queue = resilience.NewQueue(resilience.QueueConfig{
		Depth:           cfg.Queue,
		Workers:         cfg.Workers,
		SojournTarget:   cfg.QueueTarget,
		SojournInterval: cfg.QueueInterval,
		// Every dequeue's queued time feeds the ladder controller; a nil
		// brownout (pinned mode) ignores the feed.
		OnSojourn: func(d time.Duration) { srv.brownout.Observe(d) },
	})
	srv.obs.registerPipelineGauges(srv)
	// The evaluator shares the registry's simulator counters: every machine
	// it builds reports cycles, commits and per-resource conflicts.
	eval.sim = core.NewSimMetrics(reg)
	return srv
}

// handler builds the route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/schedule", s.handleSchedule)
	mux.HandleFunc("POST /v1/schedule/batch", s.handleScheduleBatch)
	mux.HandleFunc("GET /v1/mixes", s.handleMixes)
	mux.HandleFunc("GET /v1/cache/export", s.handleCacheExport)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /statz", s.handleStatz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s.obs.instrument(mux)
}

// httpError writes a JSON error body with the given status. Like every
// other write path it stamps X-Content-Digest over the exact bytes sent,
// so a verifying front can tell a genuine error answer from one a flaky
// wire mangled in transit.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	body, _ := json.Marshal(map[string]string{"error": fmt.Sprintf(format, args...)})
	body = append(body, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(integrity.Header, integrity.Digest(body))
	w.WriteHeader(status)
	w.Write(body)
}

// setRetryAfter renders d as a Retry-After header: whole seconds, rounded
// up, at least 1 — a real backoff hint derived from the shedding stage's
// own state (limiter refill rate, breaker cooldown) instead of a constant.
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
}

// clientID keys retry budgets: the X-Client-ID header when present, else
// the remote host.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// isTransient classifies evaluation errors worth retrying: only lost
// counter reads, the one failure the fault model designates recoverable.
func isTransient(err error) bool {
	return errors.Is(err, core.ErrCounterRead)
}

// mode returns the current degradation mode: the pinned value when the
// config pins one, else the brownout controller's verdict.
func (s *server) mode() int {
	if s.cfg.BrownoutPin >= 0 {
		return s.cfg.BrownoutPin
	}
	return s.brownout.Mode()
}

// handleSchedule is the full resilient pipeline for one request.
func (s *server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	// The serving mode is sampled once per request and advertised on every
	// response — sheds included — so the fleet tier can steer new work
	// toward the least-degraded replica.
	mode := s.mode()
	w.Header().Set("X-Brownout-Mode", strconv.Itoa(mode))
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	t0 := time.Now()
	allowed := s.limiter.Allow()
	s.obs.stageLimiter.ObserveSince(t0)
	if !allowed {
		setRetryAfter(w, s.limiter.RetryAfter())
		httpError(w, http.StatusTooManyRequests, "admission rate exceeded")
		return
	}
	t0 = time.Now()
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxRequestBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	req, err := DecodeScheduleRequest(body)
	s.obs.stageDecode.ObserveSince(t0)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Fault != nil && s.eval.chaos == nil {
		httpError(w, http.StatusBadRequest, "fault injection requires a server started with -chaos")
		return
	}

	// Degradation ladder. Mode 1 answers adaptive requests with the cheap
	// predictor ranking (no adaptive simulation); mode 2 serves cache hits
	// or a round-robin fallback with no simulation at all. The degraded
	// request's own fingerprint keys the cache, so a mode-1 answer is keyed
	// — and byte-identical to — a genuine rank request, and never poisons a
	// mode-0 adaptive entry.
	eff := req
	if mode >= 1 && eff.Mode == "adaptive" {
		eff.Mode = "rank"
	}

	key := eff.Fingerprint()
	t0 = time.Now()
	var cached json.RawMessage
	hit, lerr := s.rec.Lookup(key, &cached)
	s.obs.stageCache.ObserveSince(t0)
	if lerr == nil && hit {
		s.obs.cacheHits.Inc()
		s.writeResponse(w, s.maybeDiverge(key, cached), true)
		return
	}
	// Cache miss at the ladder floor: answer round-robin. The work is a
	// pure function of the request but still rides the queue, so dequeue
	// sojourn keeps feeding the brownout controller — recovery must never
	// depend on measurements that degradation itself has silenced.
	rr := mode >= 2

	t0 = time.Now()
	report, err := s.breaker.Allow()
	s.obs.stageBreaker.ObserveSince(t0)
	if err != nil {
		setRetryAfter(w, s.breaker.RetryAfter())
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}

	// The request context inherits the client connection (disconnects
	// cancel) and the server's hard-stop, bounded by the deadline budget.
	ctx, cancel := resilience.WithBudget(r.Context(), time.Duration(req.DeadlineMS)*time.Millisecond,
		s.cfg.DeadlineDef, s.cfg.DeadlineMax)
	defer cancel()
	stop := context.AfterFunc(s.base, cancel)
	defer stop()
	// SOS phase spans from the evaluator land in obs_span_seconds; a nil
	// tracer (metrics disabled) is carried as a no-op.
	ctx = obs.WithTracer(ctx, s.obs.tracer)

	var resp *ScheduleResponse
	tQueue := time.Now()
	qerr := s.queue.Do(ctx, func(ctx context.Context) error {
		if rr {
			var rerr error
			resp, rerr = roundRobin(eff)
			return rerr
		}
		tRetry := time.Now()
		var werr error
		resp, werr = s.predictWithRetry(ctx, eff, clientID(r))
		s.obs.stageRetry.ObserveSince(tRetry)
		return werr
	})
	s.obs.stageQueue.ObserveSince(tQueue)

	switch {
	case qerr == nil:
		report(resilience.Success)
		raw, merr := json.Marshal(resp)
		if merr != nil {
			s.obs.encodeFailures.Inc()
			httpError(w, http.StatusInternalServerError, "encoding response: %v", merr)
			return
		}
		if !rr {
			// Round-robin answers are deliberately uncached: once the ladder
			// recovers, the same fingerprint deserves a real evaluation.
			if rerr := s.rec.Record(key, json.RawMessage(raw)); rerr != nil {
				s.logger.Printf("cache record: %v", rerr)
			}
		}
		s.writeResponse(w, s.maybeDiverge(key, raw), false)
	case errors.Is(qerr, resilience.ErrSaturated), errors.Is(qerr, resilience.ErrOverloaded), errors.Is(qerr, resilience.ErrDraining):
		// Never reached the backend: no verdict on its health. The hint is
		// the queue's own sojourn estimate — roughly how long new work is
		// currently waiting — instead of a constant.
		report(resilience.Skipped)
		setRetryAfter(w, s.queue.SojournEstimate())
		httpError(w, http.StatusServiceUnavailable, "%v", qerr)
	case errors.Is(qerr, context.DeadlineExceeded):
		report(resilience.Failure)
		httpError(w, http.StatusGatewayTimeout, "deadline exceeded")
	case errors.Is(qerr, context.Canceled):
		// Client went away (or the server hard-stopped): not a backend fault.
		report(resilience.Skipped)
		httpError(w, http.StatusServiceUnavailable, "request cancelled")
	case errors.Is(qerr, resilience.ErrBudgetExhausted), isTransient(qerr):
		report(resilience.Failure)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "%v", qerr)
	default:
		report(resilience.Failure)
		httpError(w, http.StatusInternalServerError, "%v", qerr)
	}
}

// maybeDiverge perturbs the response for a deterministic fraction of
// fingerprints while the divergence fault window is open: it injects a
// `"divergent":true` field into the JSON body, yielding a parseable answer
// that is byte-different from what every honest replica serves. The draw
// hashes the fingerprint, so the same request diverges on every ask (cache
// hits included) — exactly the repeatably-wrong replica the fleet tier's
// quarantine must catch. The caller records the honest bytes before calling,
// so the perturbation never enters the cache or its exports.
func (s *server) maybeDiverge(key string, raw []byte) []byte {
	if s.cfg.Divergence <= 0 {
		return raw
	}
	if s.cfg.DivergenceFor > 0 && time.Since(s.started) > s.cfg.DivergenceFor {
		return raw
	}
	h := fnv.New64a()
	io.WriteString(h, key)
	if rng.Float01(rng.Hash(h.Sum64(), saltDiverge)) >= s.cfg.Divergence {
		return raw
	}
	i := bytes.LastIndexByte(raw, '}')
	if i < 0 {
		return append(append([]byte{}, raw...), []byte(` divergent`)...)
	}
	out := make([]byte, 0, len(raw)+len(`,"divergent":true`))
	out = append(out, raw[:i]...)
	out = append(out, `,"divergent":true}`...)
	out = append(out, raw[i+1:]...)
	return out
}

// predictWithRetry runs the evaluation under the client's retry budget with
// full-jitter backoff. The jitter stream is seeded from the request, so a
// request's retry timing — like everything else about it — is deterministic.
func (s *server) predictWithRetry(ctx context.Context, req ScheduleRequest, client string) (*ScheduleResponse, error) {
	var resp *ScheduleResponse
	cfg := resilience.RetryConfig{
		MaxAttempts: s.cfg.RetryAttempts,
		BaseDelay:   s.cfg.RetryBase,
		MaxDelay:    s.cfg.RetryMax,
		Jitter: func(attempt int) float64 {
			return rng.Float01(rng.Hash2(req.Seed, uint64(attempt), saltJitter))
		},
	}
	err := resilience.Do(ctx, cfg, s.budgets.Get(client), isTransient, func(attempt int) error {
		var aerr error
		resp, aerr = s.eval.evaluate(ctx, req, attempt)
		return aerr
	})
	return resp, err
}

// writeResponse sends cached-or-fresh response bytes. The body is the
// recorded bytes verbatim either way, so identical requests get
// byte-identical responses; only the X-Cache header differs. The digest is
// computed over the exact bytes written (body plus trailing newline), so a
// verifier hashing the body it read gets an equality check against the
// bytes this replica actually produced.
func (s *server) writeResponse(w http.ResponseWriter, raw []byte, hit bool) {
	body := make([]byte, 0, len(raw)+1)
	body = append(body, raw...)
	body = append(body, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(integrity.Header, integrity.Digest(body))
	if hit {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	w.Write(body)
}

// writeJSON marshals v fully before touching the ResponseWriter, so an
// encoding failure yields a clean 500 instead of a silently truncated 200
// (json.NewEncoder(w).Encode commits the status line before it can fail).
// Failures are tallied in sosd_encode_failures_total.
func (s *server) writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		s.obs.encodeFailures.Inc()
		s.logger.Printf("encoding %T response: %v", v, err)
		httpError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	body = append(body, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(integrity.Header, integrity.Digest(body))
	w.WriteHeader(status)
	w.Write(body)
}

// handleMixes lists the schedulable jobmix labels.
func (s *server) handleMixes(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, workload.MixLabels())
}

// handleCacheExport serves the full response cache as a JSON snapshot —
// the transfer a restarted fleet sibling pulls to warm up before reporting
// ready. Export deep-copies under the recorder's lock, so serving it never
// blocks or races the request path.
func (s *server) handleCacheExport(w http.ResponseWriter, r *http.Request) {
	if s.rec == nil {
		httpError(w, http.StatusNotFound, "no response cache (start with -checkpoint)")
		return
	}
	s.writeJSON(w, http.StatusOK, s.rec.Export())
}

// handleHealthz is liveness: the process is up.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}

// handleReadyz is readiness: accepting work (not draining, breaker closed
// enough to admit).
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	if s.warming.Load() {
		httpError(w, http.StatusServiceUnavailable, "warming cache")
		return
	}
	if s.breaker.State() == resilience.Open {
		httpError(w, http.StatusServiceUnavailable, "circuit breaker open")
		return
	}
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ready\n")
}

// serverStats is the /statz body.
type serverStats struct {
	Limiter  resilience.LimiterStats  `json:"limiter"`
	Breaker  resilience.BreakerStats  `json:"breaker"`
	Queue    resilience.QueueStats    `json:"queue"`
	Brownout resilience.BrownoutStats `json:"brownout"`
	Retries  struct {
		BudgetExhausted uint64 `json:"budget_exhausted"`
	} `json:"retries"`
	Cache struct {
		Hits   int `json:"hits"`
		Shards int `json:"shards"`
	} `json:"cache"`
	Draining bool `json:"draining"`
	// Goroutines lets the overload soak assert zero goroutine leaks from
	// the outside.
	Goroutines int `json:"goroutines"`
}

// stats snapshots every pipeline stage.
func (s *server) stats() serverStats {
	var st serverStats
	st.Limiter = s.limiter.Stats()
	st.Breaker = s.breaker.Stats()
	st.Queue = s.queue.Stats()
	st.Brownout = s.brownout.Stats()
	if s.cfg.BrownoutPin >= 0 {
		st.Brownout.Mode = s.cfg.BrownoutPin
		st.Brownout.Modes = brownoutModes
	}
	st.Retries.BudgetExhausted = s.budgets.Exhausted()
	if s.rec != nil {
		st.Cache.Hits = s.rec.Hits()
		st.Cache.Shards = s.rec.Shards()
	}
	st.Draining = s.draining.Load()
	st.Goroutines = runtime.NumGoroutine()
	return st
}

// handleStatz reports the pipeline counters.
func (s *server) handleStatz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.stats())
}

// shutdown drains the server: stop accepting, let in-flight work finish
// within the budget, then hard-stop whatever remains and flush the cache.
func (s *server) shutdown(budget time.Duration, httpSrv *http.Server) error {
	s.draining.Store(true)
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()

	var firstErr error
	if httpSrv != nil {
		if err := httpSrv.Shutdown(ctx); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("http shutdown: %w", err)
		}
	}
	if err := s.queue.Drain(ctx); err != nil {
		// The budget ran out: abort the stragglers at the next timeslice
		// boundary and wait for the queue to empty out for real.
		s.logger.Printf("drain budget exceeded; hard-stopping in-flight work")
		s.hardStop()
		if err := s.queue.Drain(context.Background()); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("queue drain: %w", err)
		}
	}
	s.hardStop() // release the base context either way
	if s.rec != nil {
		if err := s.rec.Flush(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("checkpoint flush: %w", err)
		}
	}
	return firstErr
}
