package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"time"

	"symbios/internal/integrity"
	"symbios/internal/rng"
)

// contextWithTimeout is context.WithTimeout without importing context at
// every call site in main.
func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

// soakRequest is the schedule request body the soak client generates. It
// mirrors sosd's ScheduleRequest wire format without importing the server
// internals — the soak client is an outside observer on purpose.
type soakRequest struct {
	Mix        string `json:"mix"`
	Seed       uint64 `json:"seed"`
	Samples    int    `json:"samples"`
	Mode       string `json:"mode"`
	DeadlineMS int64  `json:"deadline_ms"`
}

// fleetSoak drives paced deterministic load through a sosfront and holds it
// to the fleet contract: every request is answered (200), or shed cleanly
// (429/503/502 carrying Retry-After — a 502 is the front reporting every
// replica for the key failed, which under partitions or quarantine is
// honest shedding, not a lie); EVERY body — success, shed, or error,
// backend-relayed or front-synthesized — carries a digest that verifies; and
// every 200 is byte-identical to what a single-node oracle sosd computes for
// the same request. Any transport error, un-hinted shed, unexpected status,
// missing/wrong digest or byte mismatch is a violation.
//
// burst > 1 fires that many concurrent distinct requests per tick (the
// request bodies are still drawn sequentially from the seed, so the load
// pattern stays reproducible). This is how the batch phase of
// scripts/fleetsoak.sh fills the front's batch accumulator: concurrent
// distinct bodies arrive within one window and ride a single
// /v1/schedule/batch call, and the oracle comparison then proves each
// batched item's bytes identical to its singleton answer.
//
// The oracle answers are memoized per body: identical requests must produce
// identical bytes, so one oracle evaluation settles every recurrence.
func fleetSoak(stdout io.Writer, logger *log.Logger, frontURL, oracleURL string, dur time.Duration, seed uint64, rate float64, burst int) int {
	if rate < 0 {
		logger.Printf("-soak-rate %v must be non-negative", rate)
		return exitUsage
	}
	if burst < 1 {
		burst = 1
	}
	var pace time.Duration
	if rate > 0 {
		pace = time.Duration(float64(time.Second) / rate)
	}
	client := &http.Client{Timeout: 30 * time.Second}
	defer client.CloseIdleConnections()

	post := func(base string, body []byte, clientID string) (*http.Response, []byte, error) {
		req, err := http.NewRequest(http.MethodPost, base+"/v1/schedule", bytes.NewReader(body))
		if err != nil {
			return nil, nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Client-ID", clientID)
		resp, err := client.Do(req)
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return resp, data, err
	}

	// oracleAnswer fetches (and memoizes) the single-node truth for body,
	// riding out transient oracle shedding — the oracle's own limiter is not
	// the fleet's fault.
	oracleCache := map[string][]byte{}
	oracleAnswer := func(body []byte) ([]byte, error) {
		if ans, ok := oracleCache[string(body)]; ok {
			return ans, nil
		}
		var lastErr error
		for attempt := 0; attempt < 8; attempt++ {
			resp, data, err := post(oracleURL, body, "oracle-check")
			if err != nil {
				lastErr = err
			} else if resp.StatusCode == http.StatusOK {
				oracleCache[string(body)] = data
				return data, nil
			} else if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
				lastErr = fmt.Errorf("oracle shed %d", resp.StatusCode)
			} else {
				return nil, fmt.Errorf("oracle status %d: %s", resp.StatusCode, data)
			}
			time.Sleep(250 * time.Millisecond)
		}
		return nil, fmt.Errorf("oracle never answered: %w", lastErr)
	}

	mixLabels := []string{"Jsb(4,2,2)", "Jsb(5,2,2)", "Jsb(6,3,3)"}
	r := rng.New(seed)
	deadline := time.Now().Add(dur)

	var sent, ok200, shed429, shed503, shed502, violations int
	violate := func(format string, args ...any) {
		violations++
		logger.Printf("VIOLATION: "+format, args...)
	}

	type outcome struct {
		body []byte
		resp *http.Response
		data []byte
		err  error
	}
	for i := 0; time.Now().Before(deadline); i++ {
		if pace > 0 && i > 0 {
			time.Sleep(pace)
		}
		// A small seed space on purpose: recurring requests exercise the
		// response caches, the warm-up transfer and singleflight coalescing.
		// Bodies are drawn sequentially even in burst mode so the pattern is
		// a pure function of the seed; only the posting is concurrent.
		outs := make([]outcome, burst)
		for j := range outs {
			sr := soakRequest{
				Mix:        mixLabels[int(r.Uint64()%uint64(len(mixLabels)))],
				Seed:       r.Uint64() % 64,
				Samples:    int(2 + r.Uint64()%3),
				Mode:       "rank",
				DeadlineMS: 20_000,
			}
			outs[j].body, _ = json.Marshal(sr)
		}
		var wg sync.WaitGroup
		for j := range outs {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				o := &outs[j]
				o.resp, o.data, o.err = post(frontURL, o.body, fmt.Sprintf("fleet-load-%d", (i*burst+j)%4))
			}(j)
		}
		wg.Wait()
		for _, o := range outs {
			sent++
			if o.err != nil {
				violate("transport error: %v", o.err)
				continue
			}
			resp, data, body := o.resp, o.data, o.body
			// Every body must verify against its digest stamp — a relayed
			// backend envelope and a front-synthesized shed alike. This is
			// end-to-end proof no hop mangled the bytes, on every status.
			if derr := integrity.Check(resp.Header.Get(integrity.Header), data); derr != nil {
				violate("digest check for %s (status %d, served by %q): %v",
					body, resp.StatusCode, resp.Header.Get("X-Fleet-Backend"), derr)
				continue
			}
			switch resp.StatusCode {
			case http.StatusOK:
				ok200++
				want, oerr := oracleAnswer(body)
				if oerr != nil {
					violate("cannot verify %s: %v", body, oerr)
					continue
				}
				if !bytes.Equal(data, want) {
					violate("byte mismatch for %s (served by %s):\noracle: %s\nfleet:  %s",
						body, resp.Header.Get("X-Fleet-Backend"), want, data)
				}
			case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusBadGateway:
				if resp.Header.Get("Retry-After") == "" {
					violate("shed %d without Retry-After", resp.StatusCode)
				} else if resp.StatusCode == http.StatusTooManyRequests {
					shed429++
				} else if resp.StatusCode == http.StatusServiceUnavailable {
					shed503++
				} else {
					shed502++
				}
			default:
				violate("unexpected status %d: %s", resp.StatusCode, data)
			}
		}
	}

	logger.Printf("fleet soak: sent=%d 200=%d 429=%d 503=%d 502=%d violations=%d",
		sent, ok200, shed429, shed503, shed502, violations)
	if len(oracleCache) > 0 {
		fmt.Fprintf(stdout, "verified %d distinct responses\n", len(oracleCache))
	}
	switch {
	case violations > 0:
		logger.Printf("fleet soak FAILED: %d violations", violations)
		return exitInternal
	case ok200 == 0:
		logger.Printf("fleet soak FAILED: no request ever succeeded")
		return exitInternal
	}
	fmt.Fprintln(stdout, "fleet soak passed")
	return exitOK
}
