// Command sosfront is the fleet front tier for sosd: it shards /v1/schedule
// requests across a set of sosd backends by consistent hashing on
// (jobmix, seed), with R-way replica placement, per-backend circuit
// breakers, active health checking, failover between replicas, latency-
// hedged duplicates and singleflight coalescing. Because sosd responses are
// deterministic — identical requests yield byte-identical bodies on every
// replica — failover and hedging need no coordination: any replica's answer
// is THE answer. See DESIGN.md section 13.
//
// Exit codes: 0 clean shutdown (SIGINT/SIGTERM drained), 1 internal error,
// 2 usage error. In -soak mode: 0 the fleet behaved, 1 a violation was
// found, 2 usage error.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"symbios/internal/buildinfo"
	"symbios/internal/fleet"
	"symbios/internal/obs"
	"symbios/internal/resilience"
)

// Exit codes.
const (
	exitOK       = 0
	exitInternal = 1
	exitUsage    = 2
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sosfront", flag.ContinueOnError)
	fs.SetOutput(stderr)

	var (
		addr     = fs.String("addr", "127.0.0.1:8822", "listen address (host:port; port 0 picks a free port)")
		backends = fs.String("backends", "", "comma-separated sosd base URLs to shard across (required)")
		replicas = fs.Int("replicas", 2, "replica placement width per key")
		vnodes   = fs.Int("vnodes", 64, "virtual nodes per backend on the hash ring")
		drain    = fs.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
		version  = fs.Bool("version", false, "print version and exit")

		deadlineDef = fs.Duration("deadline-default", 5*time.Second, "per-request dispatch deadline when the client sets none")
		deadlineMax = fs.Duration("deadline-max", 30*time.Second, "per-request dispatch deadline ceiling")

		hedgeQuantile = fs.Float64("hedge-quantile", 0.95, "latency quantile that arms the hedge timer")
		hedgeMin      = fs.Duration("hedge-min", 20*time.Millisecond, "hedge delay floor")
		hedgeMax      = fs.Duration("hedge-max", 2*time.Second, "hedge delay ceiling (also the unwarmed delay)")
		hedgeWarmup   = fs.Int("hedge-warmup", 20, "latency samples required before the tracked quantile is trusted")
		noHedge       = fs.Bool("no-hedge", false, "disable latency-hedged duplicate requests")
		hedgeRatio    = fs.Float64("hedge-budget-ratio", 0.1, "hedge credit earned per attempt, per backend")
		hedgeCap      = fs.Float64("hedge-budget-cap", 10, "hedge credit ceiling per backend")

		batchWindow = fs.Duration("batch-window", 0, "cross-request batching window: hold small rank requests this long and send them to one backend as a single /v1/schedule/batch call (0 disables batching)")
		batchMax    = fs.Int("batch-max", 16, "max requests per batch; a full group flushes before the window elapses (clamped to the backend's 64-item bound)")

		attemptTimeout = fs.Duration("attempt-timeout", 10*time.Second, "per-backend attempt timeout inside a dispatch (0 = dispatch deadline only; bounds slow-loris backends)")
		failoverBase   = fs.Duration("failover-base", 10*time.Millisecond, "full-jitter backoff base between failover attempts")
		failoverMax    = fs.Duration("failover-max", 250*time.Millisecond, "full-jitter backoff ceiling between failover attempts")
		requireDigest  = fs.Bool("require-digest", true, "reject backend responses that carry no X-Content-Digest stamp (corrupted stamps are always rejected)")

		auditRate       = fs.Float64("audit-rate", 0.05, "per-answered-request probability of a background divergence audit (0 disables audits and quarantine readmission)")
		auditSeed       = fs.Uint64("audit-seed", 1, "deterministic audit draw seed")
		quarantineAfter = fs.Int("quarantine-after", 3, "divergence observations before a backend is quarantined from placement")
		quarantineClean = fs.Int("quarantine-readmit", 2, "consecutive clean probes before a quarantined backend is readmitted")
		noHedgeCompare  = fs.Bool("no-hedge-compare", false, "do not digest-compare hedge losers against the winner (hedge losers are cancelled instead)")

		healthEvery   = fs.Duration("health-interval", 500*time.Millisecond, "active health probe interval")
		healthTimeout = fs.Duration("health-timeout", 0, "health probe timeout (0 = same as -health-interval)")
		ejectAfter    = fs.Int("eject-after", 3, "consecutive failed probes before a backend is ejected")
		readmitAfter  = fs.Int("readmit-after", 2, "consecutive successful probes before an ejected backend is readmitted")

		brkWindow   = fs.Int("breaker-window", 16, "per-backend breaker sliding window size")
		brkMin      = fs.Int("breaker-min", 4, "per-backend breaker minimum samples before tripping")
		brkRate     = fs.Float64("breaker-rate", 0.5, "per-backend breaker error-rate threshold")
		brkCooldown = fs.Duration("breaker-cooldown", 2*time.Second, "per-backend breaker open-state cooldown")
		brkProbes   = fs.Int("breaker-probes", 2, "per-backend breaker half-open probe quota")

		soakURL      = fs.String("soak", "", "run as a fleet soak client against this front base URL instead of serving")
		oracleURL    = fs.String("oracle", "", "soak client: single-node sosd base URL whose responses are the byte-identity oracle")
		soakDuration = fs.Duration("soak-duration", 30*time.Second, "soak client: how long to generate load")
		soakSeed     = fs.Uint64("soak-seed", 1, "soak client: load-pattern seed")
		soakRate     = fs.Float64("soak-rate", 40, "soak client: request pacing, requests/second (0 = unpaced)")
		soakBurst    = fs.Int("soak-burst", 1, "soak client: concurrent distinct requests per tick (>1 exercises cross-request batching)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, `sosfront — fleet front tier for sosd

Usage:
  sosfront -backends URL,URL,... [flags]        serve (default)
  sosfront -soak URL -oracle URL [flags]        fleet soak client

Exit codes:
  0  clean shutdown (drained on SIGINT/SIGTERM), or soak passed
  1  internal error, or soak found a violation
  2  usage error

Flags:
`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.Version("sosfront"))
		return exitOK
	}
	logger := log.New(stderr, "sosfront: ", log.LstdFlags|log.Lmsgprefix)

	if *soakURL != "" {
		if *oracleURL == "" {
			fmt.Fprintln(stderr, "-soak requires -oracle (the byte-identity reference)")
			return exitUsage
		}
		return fleetSoak(stdout, logger, *soakURL, *oracleURL, *soakDuration, *soakSeed, *soakRate, *soakBurst)
	}
	if *backends == "" {
		fmt.Fprintln(stderr, "-backends is required (comma-separated sosd base URLs)")
		return exitUsage
	}

	reg := obs.NewRegistry()
	front, err := fleet.New(fleet.Config{
		Backends: strings.Split(*backends, ","),
		Replicas: *replicas,
		VNodes:   *vnodes,

		DeadlineDef: *deadlineDef,
		DeadlineMax: *deadlineMax,

		HedgeQuantile: *hedgeQuantile,
		HedgeMin:      *hedgeMin,
		HedgeMax:      *hedgeMax,
		HedgeWarmup:   *hedgeWarmup,
		HedgeDisable:  *noHedge,

		AttemptTimeout: *attemptTimeout,
		FailoverBase:   *failoverBase,
		FailoverMax:    *failoverMax,
		BatchWindow:    *batchWindow,
		BatchMax:       *batchMax,
		RequireDigest:  *requireDigest,

		Divergence: fleet.DivergenceConfig{
			CompareHedges:   !*noHedgeCompare,
			AuditRate:       *auditRate,
			Seed:            *auditSeed,
			QuarantineAfter: *quarantineAfter,
			ReadmitAfter:    *quarantineClean,
		},

		Health: fleet.HealthConfig{
			Interval:     *healthEvery,
			Timeout:      *healthTimeout,
			EjectAfter:   *ejectAfter,
			ReadmitAfter: *readmitAfter,
		},
		Breaker: resilience.BreakerConfig{
			Window:     *brkWindow,
			MinSamples: *brkMin,
			ErrorRate:  *brkRate,
			Cooldown:   *brkCooldown,
			Probes:     *brkProbes,
		},
		Budget: resilience.BudgetConfig{Ratio: *hedgeRatio, Cap: *hedgeCap},

		Logger:   logger,
		Registry: reg,
	})
	if err != nil {
		logger.Printf("config: %v", err)
		return exitUsage
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Printf("listen: %v", err)
		return exitInternal
	}
	httpSrv := &http.Server{Handler: front.Handler()}
	front.Start()

	// The address line is a contract: scripts/fleetsoak.sh parses it to find
	// a dynamically chosen port.
	logger.Printf("listening on %s", ln.Addr())
	logger.Printf("fronting %d backends, %d-way replicas", len(strings.Split(*backends, ",")), *replicas)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)

	select {
	case sig := <-sigs:
		logger.Printf("%v: draining (budget %s)", sig, *drain)
		front.Draining()
		ctx, cancel := contextWithTimeout(*drain)
		err := httpSrv.Shutdown(ctx)
		cancel()
		front.Close()
		if err != nil {
			logger.Printf("shutdown: %v", err)
			return exitInternal
		}
		<-serveErr // Serve has returned ErrServerClosed by now
		st, _ := json.Marshal(front.Stats())
		logger.Printf("drained cleanly; final stats: %s", st)
		return exitOK
	case err := <-serveErr:
		front.Close()
		if !errors.Is(err, http.ErrServerClosed) {
			logger.Printf("serve: %v", err)
			return exitInternal
		}
		return exitOK
	}
}
