// Command chaosproxy is a deterministic network-fault injector: a TCP relay
// that sits between a client and a backend (typically sosfront and sosd) and
// perturbs the byte streams it carries — added latency, connection resets,
// single-bit corruption, silent truncation, slow-loris stalls and timed
// blackhole partitions. Every fault is drawn from a seed-keyed counter hash
// (internal/chaosnet), so a run's entire fault schedule is replayable from
// its seed: same seed, same label, same connection order — same faults.
//
// Exit codes: 0 clean shutdown on SIGINT/SIGTERM, 1 internal error, 2 usage
// error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"symbios/internal/buildinfo"
	"symbios/internal/chaosnet"
)

// Exit codes.
const (
	exitOK       = 0
	exitInternal = 1
	exitUsage    = 2
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("chaosproxy", flag.ContinueOnError)
	fs.SetOutput(stderr)

	var (
		addr    = fs.String("addr", "127.0.0.1:0", "listen address (host:port; port 0 picks a free port)")
		backend = fs.String("backend", "", "backend address to relay to (host:port; required)")
		label   = fs.String("label", "", "fault stream label; distinct labels draw independent schedules from the same seed (default: the backend address)")
		seed    = fs.Uint64("seed", 1, "fault schedule seed")
		version = fs.Bool("version", false, "print version and exit")

		latencyP   = fs.Float64("latency-p", 0, "per-connection probability of added first-byte latency")
		latencyMin = fs.Duration("latency-min", 5*time.Millisecond, "added latency floor")
		latencyMax = fs.Duration("latency-max", 50*time.Millisecond, "added latency ceiling")

		resetP    = fs.Float64("reset-p", 0, "per-connection probability of an immediate RST")
		corruptP  = fs.Float64("corrupt-p", 0, "per-connection probability of a single flipped bit in the backend->client stream")
		corruptW  = fs.Uint64("corrupt-window", 4096, "byte window the corruption offset is drawn from")
		truncateP = fs.Float64("truncate-p", 0, "per-connection probability of silent stream truncation")
		truncateW = fs.Uint64("truncate-window", 4096, "byte window the truncation offset is drawn from")

		stallP   = fs.Float64("stall-p", 0, "per-connection probability of a mid-stream stall (slow loris)")
		stallFor = fs.Duration("stall-for", 2*time.Second, "stall duration")
		stallW   = fs.Uint64("stall-window", 4096, "byte window the stall offset is drawn from")

		partEvery = fs.Duration("partition-every", 0, "blackhole period: hold all traffic for -partition-for once per this interval (0 disables)")
		partFor   = fs.Duration("partition-for", 10*time.Second, "blackhole duration per period")
		partStart = fs.Duration("partition-start", 0, "offset of the first blackhole window into each period")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, `chaosproxy — deterministic TCP fault injector

Usage:
  chaosproxy -backend HOST:PORT [flags]

Exit codes:
  0  clean shutdown (SIGINT/SIGTERM)
  1  internal error
  2  usage error

Flags:
`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.Version("chaosproxy"))
		return exitOK
	}
	logger := log.New(stderr, "chaosproxy: ", log.LstdFlags|log.Lmsgprefix)
	if *backend == "" {
		fmt.Fprintln(stderr, "-backend is required (host:port to relay to)")
		return exitUsage
	}
	for _, p := range []struct {
		name string
		v    float64
	}{{"latency-p", *latencyP}, {"reset-p", *resetP}, {"corrupt-p", *corruptP}, {"truncate-p", *truncateP}, {"stall-p", *stallP}} {
		if p.v < 0 || p.v > 1 {
			fmt.Fprintf(stderr, "-%s %v out of range [0,1]\n", p.name, p.v)
			return exitUsage
		}
	}

	cfg := chaosnet.Config{
		Seed:           *seed,
		LatencyP:       *latencyP,
		LatencyMin:     *latencyMin,
		LatencyMax:     *latencyMax,
		ResetP:         *resetP,
		CorruptP:       *corruptP,
		CorruptWindow:  *corruptW,
		TruncateP:      *truncateP,
		TruncateWindow: *truncateW,
		StallP:         *stallP,
		StallFor:       *stallFor,
		StallWindow:    *stallW,
		PartitionEvery: *partEvery,
		PartitionFor:   *partFor,
		PartitionStart: *partStart,
	}
	lbl := *label
	if lbl == "" {
		lbl = *backend
	}
	proxy, err := chaosnet.NewProxy(cfg, *addr, *backend, lbl)
	if err != nil {
		logger.Printf("listen: %v", err)
		return exitInternal
	}

	// The address line is a contract: scripts/partitionsoak.sh parses it to
	// find a dynamically chosen port.
	logger.Printf("listening on %s", proxy.Addr())
	logger.Printf("relaying to %s (label %q, seed %d)", *backend, lbl, *seed)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	sig := <-sigs

	logger.Printf("%v: closing", sig)
	if err := proxy.Close(); err != nil {
		logger.Printf("close: %v", err)
		return exitInternal
	}
	st, _ := json.Marshal(proxy.Stats())
	logger.Printf("drained cleanly; final stats: %s", st)
	return exitOK
}
