// Command sosbench regenerates the paper's tables and figures.
//
// Usage:
//
//	sosbench -exp table1|table2|table3|fig1|fig2|fig3|fig4|fig5|fig6|parallel|warmstart|robustness|all
//	         [-scale quick|default|paper] [-seed N] [-mix "Jsb(6,3,3)"]
//	         [-workers N] [-cpuprofile out.pprof] [-memprofile out.pprof]
//	         [-checkpoint snap.ckpt] [-resume snap.ckpt] [-checkpoint-every N]
//	         [-deadline 30m] [-stall-factor 8] [-stall-floor 30s]
//	         [-trace-out spans.jsonl]
//
// Output is plain text formatted like the paper's tables; weighted speedups
// are measured at the selected scale (see internal/experiments for the
// scaling rules). Independent simulations fan out over -workers goroutines
// (default GOMAXPROCS) with bit-identical results at any worker count; see
// internal/parallel for the determinism contract.
//
// Long runs are crash-safe: -checkpoint records completed experiment shards
// to a snapshot file, -resume replays a snapshot (recomputing only what the
// crash interrupted, byte-identically), and -deadline bounds the run's wall
// time, flushing a resumable snapshot before exiting. A stall watchdog
// aborts (and checkpoints) when one simulation window exceeds -stall-factor
// times the median window wall-time. See internal/checkpoint.
//
// Exit codes: 0 success, 1 internal error, 2 usage error, 3 deadline
// exceeded (resumable), 4 stall detected (resumable).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"symbios/internal/buildinfo"
	"symbios/internal/checkpoint"
	"symbios/internal/core"
	"symbios/internal/experiments"
	"symbios/internal/obs"
	"symbios/internal/parallel"
	"symbios/internal/report"
)

// Exit codes. Scripts driving long sweeps branch on these: 3 and 4 mean "a
// valid snapshot was flushed; rerun with -resume", 2 means the invocation
// itself was wrong, 1 everything else.
const (
	exitOK       = 0
	exitInternal = 1
	exitUsage    = 2
	exitDeadline = 3
	exitStalled  = 4
)

// knownExperiments is the validated -exp vocabulary, in display order.
var knownExperiments = []string{
	"table1", "table2", "table3", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
	"parallel", "warmstart", "levels", "coldstart", "pairwise", "shootout",
	"ablation", "robustness", "openload", "all",
}

func main() {
	// All teardown (profiles, watchdog) runs via defers inside realMain;
	// os.Exit must stay out here where nothing is pending.
	os.Exit(realMain())
}

func realMain() int {
	var (
		expName    = flag.String("exp", "table3", "experiment(s) to run, comma-separated: "+strings.Join(knownExperiments, ", "))
		scaleName  = flag.String("scale", "default", "cycle budget: quick, default or paper")
		seed       = flag.Uint64("seed", 1, "root random seed")
		mixLabel   = flag.String("mix", "", "restrict fig1/fig3 to one mix label, e.g. 'Jsb(6,3,3)'")
		jsonPath   = flag.String("json", "", "also write structured results to this JSON file")
		workers    = flag.Int("workers", 0, "worker goroutines for independent simulations (0 = GOMAXPROCS; results are identical at any count)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
		ckptPath   = flag.String("checkpoint", "", "record completed experiment shards to this snapshot file")
		resumePath = flag.String("resume", "", "resume from this snapshot file (continues recording there unless -checkpoint names another)")
		ckptEvery  = flag.Int("checkpoint-every", 1, "flush the snapshot every N completed shards")
		deadline   = flag.Duration("deadline", 0, "abort (with a resumable snapshot) after this wall time, e.g. 30m")
		stallFct   = flag.Float64("stall-factor", 8, "flag a stall when one window exceeds this multiple of the median window wall-time (0 disables)")
		stallFlr   = flag.Duration("stall-floor", 30*time.Second, "never flag a stall before a window is at least this old")
		traceOut   = flag.String("trace-out", "", "write SOS phase and shard spans to this file as JSON lines")
		version    = flag.Bool("version", false, "print version information and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "Usage: sosbench [flags]\n\nFlags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), `
Exit codes:
  0  success
  1  internal error
  2  usage error (bad flag, unknown experiment, snapshot meta mismatch)
  3  deadline exceeded; a resumable snapshot was flushed (rerun with -resume)
  4  stall detected; a resumable snapshot was flushed (rerun with -resume)
`)
	}
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version("sosbench"))
		return exitOK
	}

	exps := strings.Split(*expName, ",")
	for _, e := range exps {
		if !knownExperiment(e) {
			fmt.Fprintf(os.Stderr, "sosbench: unknown experiment %q\nvalid experiments: %s\n",
				e, strings.Join(knownExperiments, ", "))
			return exitUsage
		}
	}
	sc, err := scaleByName(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sosbench:", err)
		return exitUsage
	}
	if *deadline < 0 {
		fmt.Fprintln(os.Stderr, "sosbench: -deadline must be positive")
		return exitUsage
	}

	if *workers != 0 {
		parallel.SetDefaultWorkers(*workers)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sosbench:", err)
			return exitInternal
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "sosbench:", err)
			return exitInternal
		}
		defer pprof.StopCPUProfile()
	}

	sc.Seed = *seed
	qs := experiments.DefaultQueueScale()
	if *scaleName == "quick" {
		qs = experiments.QuickQueueScale()
	}
	qs.Seed = *seed

	var labels []string
	if *mixLabel != "" {
		labels = []string{*mixLabel}
	}

	// The context carries the run's whole robustness apparatus: the deadline
	// budget, the cancel-with-cause channel the watchdog fires into, the
	// shard recorder and the watchdog itself.
	ctx := context.Background()
	if *deadline > 0 {
		var stop context.CancelFunc
		ctx, stop = context.WithTimeout(ctx, *deadline)
		defer stop()
	}
	ctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	// The snapshot meta pins the flags that determine every shard's value;
	// resuming under different flags is refused rather than silently mixing
	// two runs' numbers.
	meta := checkpoint.Meta{Exp: *expName, Scale: *scaleName, Seed: *seed, Mix: *mixLabel}
	var rec *checkpoint.Recorder
	switch {
	case *resumePath != "":
		rec, err = checkpoint.Resume(*resumePath, *ckptPath, meta, *ckptEvery)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sosbench:", err)
			if errors.Is(err, checkpoint.ErrMetaMismatch) {
				return exitUsage
			}
			return exitInternal
		}
		fmt.Fprintf(os.Stderr, "sosbench: resuming from %s (%d shards recorded)\n", *resumePath, rec.Shards())
	case *ckptPath != "":
		rec = checkpoint.NewRecorder(*ckptPath, meta, *ckptEvery)
	}
	if rec != nil {
		ctx = checkpoint.WithRecorder(ctx, rec)
	}

	// The tracer rides the same context: every SOS phase and experiment shard
	// emits one JSONL span. Tracing is observational only — outputs stay
	// bit-identical with it on or off (see the obs determinism tests).
	var tracer *obs.Tracer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sosbench:", err)
			return exitInternal
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "sosbench: trace close:", err)
			}
		}()
		tracer = obs.NewTracer(f, nil)
		ctx = obs.WithTracer(ctx, tracer)
	}

	if *stallFct > 0 && (rec != nil || *deadline > 0) {
		wd := checkpoint.NewWatchdog(checkpoint.WatchdogConfig{
			Factor: *stallFct,
			Floor:  *stallFlr,
			OnStall: func(e *checkpoint.StallError) {
				// Checkpoint, then abort: the snapshot covers every shard
				// completed before the stall, so the rerun loses only the
				// stuck window.
				_ = rec.Flush()
				cancel(e)
			},
		})
		defer wd.Stop()
		ctx = checkpoint.WithWatchdog(ctx, wd)
	}

	results := map[string]any{}
	var runErr error
	for _, exp := range exps {
		if runErr = run(ctx, exp, sc, qs, labels, results); runErr != nil {
			break
		}
	}
	// Whatever happened, persist completed shards: the snapshot is the whole
	// point of a budgeted run.
	if rec != nil {
		if ferr := rec.Flush(); ferr != nil && runErr == nil {
			runErr = ferr
		}
		if rec.Hits() > 0 {
			fmt.Fprintf(os.Stderr, "sosbench: resume replayed %d shards without recomputation\n", rec.Hits())
		}
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "sosbench:", runErr)
		cause := context.Cause(ctx)
		switch {
		case errors.Is(runErr, checkpoint.ErrStalled) || errors.Is(cause, checkpoint.ErrStalled):
			resumeHint(rec)
			return exitStalled
		case errors.Is(runErr, context.DeadlineExceeded) || errors.Is(cause, context.DeadlineExceeded):
			resumeHint(rec)
			return exitDeadline
		default:
			return exitInternal
		}
	}
	if tracer != nil {
		if err := tracer.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "sosbench: trace write:", err)
			return exitInternal
		}
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sosbench:", err)
			return exitInternal
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, "sosbench:", err)
			return exitInternal
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "sosbench:", err)
			return exitInternal
		}
	}
	if *memProfile != "" {
		runtime.GC() // report live allocations, not transient garbage
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sosbench:", err)
			return exitInternal
		}
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "sosbench:", err)
			return exitInternal
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "sosbench:", err)
			return exitInternal
		}
	}
	return exitOK
}

// resumeHint tells the operator how to pick the run back up.
func resumeHint(rec *checkpoint.Recorder) {
	if rec != nil && rec.Shards() > 0 {
		fmt.Fprintf(os.Stderr, "sosbench: %d shards saved; rerun with -resume %s to continue\n",
			rec.Shards(), rec.Path())
	}
}

func knownExperiment(name string) bool {
	for _, k := range knownExperiments {
		if name == k {
			return true
		}
	}
	return false
}

func scaleByName(name string) (experiments.Scale, error) {
	switch name {
	case "quick":
		return experiments.QuickScale(), nil
	case "default":
		return experiments.DefaultScale(), nil
	case "paper":
		return experiments.PaperScale(), nil
	}
	return experiments.Scale{}, fmt.Errorf("unknown scale %q (valid: quick, default, paper)", name)
}

func run(ctx context.Context, exp string, sc experiments.Scale, qs experiments.QueueScale, labels []string, results map[string]any) error {
	switch exp {
	case "all":
		for _, e := range []string{"table1", "table2", "table3", "fig1", "fig2", "fig3", "parallel", "fig4", "warmstart", "fig5", "fig6"} {
			if err := run(ctx, e, sc, qs, labels, results); err != nil {
				return err
			}
		}
		return nil

	case "table1":
		fmt.Println("== Table 1: applications used in each experiment ==")
		results["table1"] = experiments.Table1()
		for _, r := range experiments.Table1() {
			fmt.Printf("%-36s %s\n", r.Experiments, strings.Join(r.Jobs, ","))
		}

	case "table2":
		fmt.Println("== Table 2: distinct schedules and sample-phase length ==")
		fmt.Printf("%-14s %18s %22s %24s\n", "Experiment", "Distinct Schedules", "Sample Cycles (scaled)", "Million Sample Cycles")
		results["table2"] = experiments.Table2(sc)
		for _, r := range experiments.Table2(sc) {
			fmt.Printf("%-14s %18s %22d %24d\n", r.Experiment, r.DistinctSchedules, r.SampleCycles, r.PaperSampleMCycles)
		}

	case "table3":
		fmt.Println("== Table 3: Jsb(6,3,3) predictor detail ==")
		rows, ev, err := experiments.Table3Ctx(ctx, sc)
		if err != nil {
			return err
		}
		results["table3"] = rows
		fmt.Printf("%-10s %6s %8s %7s %6s %6s %6s %9s %8s %9s | %6s\n",
			"Schedule", "IPC", "AllConf", "Dcache", "FQ", "FP", "Sum2", "Diversity", "Balance", "Composite", "WS(t)")
		for _, r := range rows {
			fmt.Printf("%-10s %6.3f %8.2f %7.1f %6.2f %6.2f %6.2f %9.3f %8.3f %9.2f | %6.3f\n",
				r.Schedule, r.IPC, r.AllConf, r.Dcache, r.FQ, r.FP, r.Sum2, r.Diversity, r.Balance, r.Composite, r.WS)
		}
		fmt.Printf("best %.3f  worst %.3f  avg %.3f\n", ev.Best(), ev.Worst(), ev.Avg())

	case "fig1":
		fmt.Println("== Figure 1: worst and best weighted speedup per jobmix ==")
		rows, err := experiments.Figure1Ctx(ctx, sc, labels)
		if err != nil {
			return err
		}
		results["fig1"] = rows
		fmt.Printf("%-14s %7s %7s %7s %9s %10s %6s\n", "Mix", "Worst", "Best", "Avg", "Spread%", "BestvsAvg%", "Scheds")
		for _, r := range rows {
			fmt.Printf("%-14s %7.3f %7.3f %7.3f %9.1f %10.1f %6d\n",
				r.Mix, r.Worst, r.Best, r.Avg, r.SpreadPct, r.OverAvgPct, r.NumSchedules)
		}

	case "fig2":
		fmt.Println("== Figure 2: weighted speedup by predictor, Jsb(6,3,3) ==")
		bars, err := experiments.Figure2Ctx(ctx, sc)
		if err != nil {
			return err
		}
		results["fig2"] = bars
		printBars(bars)

	case "fig3":
		fmt.Println("== Figure 3: weighted speedup by predictor, all jobmixes ==")
		rows, err := experiments.Figure3Ctx(ctx, sc, labels)
		if err != nil {
			return err
		}
		results["fig3"] = rows
		for _, r := range rows {
			fmt.Printf("-- %s --\n", r.Mix)
			printBars(r.Bars)
		}

	case "parallel":
		fmt.Println("== Section 6: parallel workload scheduling ==")
		var parallelRows []experiments.ParallelRow
		for _, label := range []string{"Jpb(10,2,2)", "J2pb(10,2,2)"} {
			row, err := experiments.ParallelStudyCtx(ctx, sc, label)
			if err != nil {
				return err
			}
			parallelRows = append(parallelRows, row)
			fmt.Printf("%-14s cosched-avg %.3f  split-avg %.3f  chosen cosched=%v WS %.3f  (best %.3f worst %.3f)\n",
				row.Mix, row.CoschedAvgWS, row.SplitAvgWS, row.ChosenCosched, row.ChosenWS, row.Best, row.Worst)
		}
		results["parallel"] = parallelRows

	case "fig4":
		fmt.Println("== Figure 4: hierarchical symbiosis ==")
		rows, err := experiments.Figure4Ctx(ctx, sc)
		if err != nil {
			return err
		}
		results["fig4"] = rows
		fmt.Printf("%-10s %8s %8s %8s %8s %10s %11s %s\n", "SMT level", "Chosen", "Best", "Worst", "Avg", "OverAvg%", "OverWorst%", "Chosen alloc")
		for _, r := range rows {
			fmt.Printf("%-10d %8.3f %8.3f %8.3f %8.3f %10.1f %11.1f %s\n",
				r.SMTLevel, r.ChosenWS, r.Best, r.Worst, r.Avg, r.OverAvgPct, r.OverWorstPct, r.ChosenDesc)
		}

	case "warmstart":
		fmt.Println("== Section 8: warmstart scheduling ==")
		rows, err := experiments.WarmstartStudyCtx(ctx, sc)
		if err != nil {
			return err
		}
		results["warmstart"] = rows
		for _, r := range rows {
			fmt.Printf("%-12s avg %.3f | %-12s avg %.3f (%+.1f%%) | %-12s avg %.3f (%+.1f%%)\n",
				r.FullSwap, r.FullSwapAvg, r.WarmBig, r.WarmBigAvg, r.WarmBigGainPct,
				r.WarmLittle, r.WarmLittleAvg, r.WarmLittleGainPct)
		}

	case "fig5":
		fmt.Println("== Figure 5: response time improvement vs SMT level ==")
		rows, err := experiments.Figure5Ctx(ctx, qs)
		if err != nil {
			return err
		}
		results["fig5"] = rows
		printResponse(rows)

	case "fig6":
		fmt.Println("== Figure 6: response time improvement vs arrival rate (SMT=3) ==")
		rows, err := experiments.Figure6Ctx(ctx, qs, nil)
		if err != nil {
			return err
		}
		results["fig6"] = rows
		printResponse(rows)

	case "openload":
		fmt.Println("== Extension: open-system overload sweep (SMT=3, 0.5x-1.5x capacity) ==")
		rows, err := experiments.OpenLoadCtx(ctx, qs, nil)
		if err != nil {
			return err
		}
		results["openload"] = rows
		printOpenLoad(rows)

	case "shootout":
		fmt.Println("== Extension: predictor shootout (paper's ten + experimental variants) ==")
		rows, err := experiments.PredictorShootoutCtx(ctx, sc, nil)
		if err != nil {
			return err
		}
		results["shootout"] = rows
		fmt.Printf("%-14s %10s %6s %6s\n", "Predictor", "MeanGain%", "Best", "Worst")
		for _, r := range rows {
			fmt.Printf("%-14s %10.1f %6d %6d\n", r.Name, r.MeanGainPct, r.BestPicks, r.WorstPicks)
		}

	case "pairwise":
		fmt.Println("== Extension: pairwise symbiosis matrix (WS of each pair on a 2-context machine) ==")
		tbl, err := experiments.PairwiseCtx(ctx, sc, nil)
		if err != nil {
			return err
		}
		results["pairwise"] = tbl
		if err := report.Matrix(os.Stdout, tbl.Names, tbl.WS); err != nil {
			return err
		}

	case "coldstart":
		fmt.Println("== Section 8 extension: coldstart amortization vs timeslice length (Jsb(6,3,3), schedule 012_345) ==")
		rows, err := experiments.ColdstartStudyCtx(ctx, sc, nil)
		if err != nil {
			return err
		}
		results["coldstart"] = rows
		fmt.Printf("%-12s %8s %8s %8s\n", "slice", "WS", "IPC", "L1D hit%")
		for _, r := range rows {
			fmt.Printf("%-12d %8.3f %8.3f %8.1f\n", r.SliceCycles, r.WS, r.IPC, r.L1DHitPct)
		}

	case "levels":
		fmt.Println("== Extension: throughput and schedule sensitivity vs SMT level (12-job mix) ==")
		rows, err := experiments.ThroughputVsLevelCtx(ctx, sc, nil)
		if err != nil {
			return err
		}
		results["levels"] = rows
		fmt.Printf("%-10s %7s %7s %7s %9s %9s %10s\n", "SMT level", "Worst", "Best", "Avg", "Spread%", "Score", "ScoreGain%")
		for _, r := range rows {
			fmt.Printf("%-10d %7.3f %7.3f %7.3f %9.1f %9.3f %10.1f\n",
				r.SMTLevel, r.Worst, r.Best, r.Avg, r.SpreadPct, r.ScoreWS, r.ScoreGainPct)
		}

	case "ablation":
		fmt.Println("== Ablation: fetch policy (Jsb(6,3,3)) ==")
		fps, err := experiments.AblationFetchPolicyCtx(ctx, sc)
		if err != nil {
			return err
		}
		results["ablation_fetch"] = fps
		for _, r := range fps {
			fmt.Println(" ", r)
		}
		fmt.Println("== Ablation: sample count (Jsb(8,4,1)) ==")
		scs, err := experiments.AblationSampleCountCtx(ctx, "Jsb(8,4,1)", sc, nil)
		if err != nil {
			return err
		}
		for _, r := range scs {
			fmt.Printf("  samples %2d: chosen WS %.3f  sample-best %.3f  avg %.3f  regret %.1f%%\n",
				r.Samples, r.ChosenWS, r.BestWS, r.AvgWS, 100*r.Regret)
		}
		fmt.Println("== Ablation: sampling-seed robustness (Jsb(6,3,3)) ==")
		srs, err := experiments.AblationSeedsCtx(ctx, "Jsb(6,3,3)", sc, nil)
		if err != nil {
			return err
		}
		for _, r := range srs {
			fmt.Printf("  seed %d: chosen WS %.3f  avg %.3f  gain %+.1f%%\n", r.Seed, r.ChosenWS, r.AvgWS, r.GainPct)
		}

	case "robustness":
		fmt.Println("== Robustness: predictor degradation vs counter faults, with churned adaptive SOS ==")
		var mixes []string
		if len(labels) > 0 {
			mixes = labels
		}
		rows, err := experiments.RobustnessCtx(ctx, sc, mixes, nil, nil)
		if err != nil {
			return err
		}
		results["robustness"] = rows
		printRobustness(rows)

	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

func printRobustness(rows []experiments.RobustnessRow) {
	preds := core.Predictors()
	fmt.Printf("%-12s %-28s %7s", "Mix", "Fault", "Naive")
	for _, p := range preds {
		fmt.Printf(" %9s", p)
	}
	fmt.Printf(" | %8s %4s %4s %4s %4s\n", "Adaptive", "rsmp", "rtry", "fbk", "lost")
	for _, r := range rows {
		fmt.Printf("%-12s %-28s %7.3f", r.Mix, r.Fault, r.NaiveWS)
		for _, p := range preds {
			fmt.Printf(" %9.3f", r.PredWS[p.String()])
		}
		fmt.Printf(" | %8.3f %4d %4d %4d %4d\n",
			r.AdaptiveWS, r.Resamples, r.Retries, r.FallbackSlices, r.LostWindows)
	}
}

func printBars(bars []experiments.Figure2Bar) {
	for _, b := range bars {
		fmt.Printf("  %-10s %6.3f  %s\n", b.Label, b.WS, strings.Repeat("#", int(b.WS*20)))
	}
}

func printOpenLoad(rows []experiments.OpenLoadRow) {
	fmt.Printf("%-8s %6s %-12s %12s %12s %12s %12s %6s %6s\n",
		"Dist", "Load", "Scheduler", "mean RT", "p50", "p99", "p99.9", "done", "shrunk")
	for _, r := range rows {
		fmt.Printf("%-8s %5.2fx %-12s %12.0f %12.0f %12.0f %12.0f %6d %6d\n",
			r.Dist, r.Factor, r.Scheduler, r.MeanResponse, r.P50, r.P99, r.P999, r.Completed, r.ShrunkPhases)
	}
}

func printResponse(rows []experiments.ResponseRow) {
	fmt.Printf("%-10s %14s %12s %12s %12s %8s\n", "SMT level", "interarrival", "naive RT", "SOS RT", "improve%", "N~")
	for _, r := range rows {
		fmt.Printf("%-10d %14.0f %12.0f %12.0f %12.1f %8.1f\n",
			r.SMTLevel, r.Lambda, r.NaiveResponse, r.SOSResponse, r.ImprovementPct, r.MeanJobsInSystem)
	}
}
